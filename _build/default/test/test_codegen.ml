(* Tests for the code-generation substrate: the expression IR, the loop
   schedule, the interpreter (against the reference executor — the key
   semantics-preservation property) and the C emitter. *)

open Sorl_stencil
open Sorl_codegen

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let feq = Alcotest.float 1e-9

let small_inst kernel n =
  let dims = Kernel.dims kernel in
  if dims = 2 then Instance.create_xyz kernel ~sx:n ~sy:n ~sz:1
  else Instance.create_xyz kernel ~sx:n ~sy:n ~sz:n

(* ---- Expr ---- *)

let test_expr_of_kernel () =
  let e = Expr.of_kernel Benchmarks.laplacian in
  checki "one load per tap" 7 (List.length (Expr.loads e));
  (* mul per tap + (taps-1) adds *)
  checki "flops" 13 (Expr.flops e)

let test_expr_eval () =
  let k = Benchmarks.laplacian in
  let e = Expr.of_kernel k in
  (* load = 1 everywhere -> value = sum of coefficients *)
  let v = Expr.eval e ~load:(fun _ _ -> 1.) in
  let expected =
    List.fold_left
      (fun acc off -> acc +. Kernel.coefficient k ~buffer:0 off)
      0.
      (Pattern.offsets (Kernel.pattern k))
  in
  Alcotest.check feq "weighted sum" expected v

let test_expr_to_c () =
  let e = Expr.of_kernel Benchmarks.gradient in
  let s = Expr.to_c e in
  checkb "references in0" true
    (String.length s > 0
    && (let found = ref false in
        String.iteri
          (fun i _ ->
            if i + 3 <= String.length s && String.sub s i 3 = "in0" then found := true)
          s;
        !found))

(* ---- Schedule ---- *)

let test_schedule_clamps () =
  let inst = small_inst Benchmarks.laplacian 16 in
  let s = Schedule.create inst (Tuning.create ~bx:1024 ~by:8 ~bz:1024 ~u:0 ~c:4) in
  checki "bx clamped to grid" 16 s.Schedule.bx;
  checki "bz clamped" 16 s.Schedule.bz;
  checki "unroll 0 -> 1" 1 s.Schedule.unroll

let test_schedule_2d_forces_bz () =
  let inst = Instance.create_xyz Benchmarks.edge ~sx:32 ~sy:32 ~sz:1 in
  let s = Schedule.create inst (Tuning.create ~bx:8 ~by:8 ~bz:64 ~u:2 ~c:2) in
  checki "2d bz" 1 s.Schedule.bz

let test_schedule_tiles_cover () =
  let inst = small_inst Benchmarks.laplacian 10 in
  (* 10 / 4 -> 3 tiles per axis with a remainder tile of extent 2. *)
  let s = Schedule.create inst (Tuning.create ~bx:4 ~by:4 ~bz:4 ~u:1 ~c:2) in
  checki "tiles" 27 (Schedule.num_tiles s);
  checki "chunks" 14 (Schedule.num_chunks s);
  let covered = Array.make (10 * 10 * 10) false in
  for i = 0 to Schedule.num_tiles s - 1 do
    let tl = Schedule.tile s i in
    checkb "nonempty" true (Schedule.tile_points tl > 0);
    for z = tl.Schedule.z0 to tl.Schedule.z1 - 1 do
      for y = tl.Schedule.y0 to tl.Schedule.y1 - 1 do
        for x = tl.Schedule.x0 to tl.Schedule.x1 - 1 do
          let idx = (((z * 10) + y) * 10) + x in
          checkb "no overlap" false covered.(idx);
          covered.(idx) <- true
        done
      done
    done
  done;
  checkb "full cover" true (Array.for_all Fun.id covered)

let test_schedule_chunk_ranges_partition () =
  let inst = small_inst Benchmarks.laplacian 10 in
  let s = Schedule.create inst (Tuning.create ~bx:4 ~by:4 ~bz:4 ~u:1 ~c:5) in
  let total = ref 0 in
  let prev_hi = ref 0 in
  for c = 0 to Schedule.num_chunks s - 1 do
    let lo, hi = Schedule.chunk_tile_range s c in
    checki "contiguous" !prev_hi lo;
    prev_hi := hi;
    total := !total + (hi - lo)
  done;
  checki "chunks partition tiles" (Schedule.num_tiles s) !total

let test_assign_chunks_round_robin () =
  let inst = small_inst Benchmarks.laplacian 10 in
  let s = Schedule.create inst (Tuning.create ~bx:4 ~by:4 ~bz:4 ~u:1 ~c:2) in
  let workers = Schedule.assign_chunks s ~threads:4 in
  checki "4 workers" 4 (Array.length workers);
  let all = Array.to_list workers |> Array.concat |> Array.to_list |> List.sort compare in
  checki "all chunks assigned once" (Schedule.num_chunks s) (List.length all);
  Alcotest.(check (list int)) "exactly chunk ids"
    (List.init (Schedule.num_chunks s) Fun.id)
    all

(* ---- Interp vs Reference (semantics preservation) ---- *)

let agree ?(threads = 1) kernel n tuning =
  let inst = small_inst kernel n in
  let v = Variant.compile inst tuning in
  let inputs, out1 = Interp.make_grids ~seed:11 inst in
  Interp.run ~threads v ~inputs ~output:out1;
  let out2 = Sorl_grid.Grid.copy out1 in
  Sorl_grid.Grid.fill out2 0.;
  Reference.run inst ~inputs ~output:out2;
  Sorl_grid.Grid.max_abs_diff out1 out2 < 1e-9

let test_interp_matches_reference_all_kernels () =
  List.iter
    (fun k ->
      let n = if Kernel.dims k = 2 then 20 else 12 in
      let dims = Kernel.dims k in
      let t = Tuning.default ~dims in
      checkb (Kernel.name k ^ " agrees") true (agree k n t))
    Benchmarks.kernels

let test_interp_unroll_remainder () =
  (* bx not divisible by unroll: remainder loop exercised. *)
  let t = Tuning.create ~bx:7 ~by:3 ~bz:2 ~u:4 ~c:3 in
  checkb "remainder handled" true (agree Benchmarks.laplacian 13 t)

let test_interp_thread_interleaving_irrelevant () =
  let t = Tuning.create ~bx:4 ~by:4 ~bz:4 ~u:2 ~c:2 in
  checkb "1 thread" true (agree ~threads:1 Benchmarks.gradient 12 t);
  checkb "5 threads" true (agree ~threads:5 Benchmarks.gradient 12 t)

let test_interp_validation () =
  let inst = small_inst Benchmarks.laplacian 8 in
  let v = Variant.compile inst (Tuning.default ~dims:3) in
  let _inputs, output = Interp.make_grids inst in
  Alcotest.check_raises "wrong buffer count"
    (Invalid_argument "Interp.run: wrong number of input grids") (fun () ->
      Interp.run v ~inputs:[||] ~output);
  let bad = Sorl_grid.Grid.create ~nx:4 ~ny:8 ~nz:8 () in
  Alcotest.check_raises "wrong shape" (Invalid_argument "Interp.run: input shape")
    (fun () -> Interp.run v ~inputs:[| bad |] ~output)

let test_reference_step_count () =
  (* Two explicit steps equal step_count ~steps:2. *)
  let inst = small_inst Benchmarks.laplacian 8 in
  let inputs1, out1 = Interp.make_grids ~seed:3 inst in
  Reference.run inst ~inputs:inputs1 ~output:out1;
  Sorl_grid.Grid.blit ~src:out1 ~dst:inputs1.(0);
  Reference.run inst ~inputs:inputs1 ~output:out1;
  let inputs2, out2 = Interp.make_grids ~seed:3 inst in
  Reference.step_count inst ~inputs:inputs2 ~output:out2 ~steps:2;
  checkb "two steps agree" true (Sorl_grid.Grid.max_abs_diff out1 out2 < 1e-9);
  Alcotest.check_raises "steps >= 1"
    (Invalid_argument "Reference.step_count: steps must be >= 1") (fun () ->
      Reference.step_count inst ~inputs:inputs2 ~output:out2 ~steps:0)

(* ---- Emit_c ---- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_emit_c_structure () =
  let inst = small_inst Benchmarks.laplacian 64 in
  let v = Variant.compile inst (Tuning.create ~bx:16 ~by:8 ~bz:8 ~u:4 ~c:2) in
  let c = Emit_c.emit v in
  checkb "has pragma" true (contains c "#pragma omp parallel for schedule(static, 2)");
  checkb "has unrolled loop" true (contains c "/* unrolled x4 */");
  checkb "has tile decomposition" true (contains c "int tile = 0");
  checkb "has main" true (contains c "int main(void)");
  checkb "double type" true (contains c "double *restrict out");
  checkb "signature matches" true (contains c (Emit_c.kernel_signature v))

let test_emit_c_no_unroll () =
  let inst = small_inst Benchmarks.edge 64 in
  let v = Variant.compile inst (Tuning.create ~bx:16 ~by:8 ~bz:1 ~u:0 ~c:1) in
  let c = Emit_c.emit v in
  checkb "plain x loop" true (contains c "for (int x = x0; x < x1; x++)");
  checkb "float type" true (contains c "float *restrict out")

(* ---- property: random schedules preserve semantics ---- *)

let gen_case =
  QCheck2.Gen.(
    let* bx = int_range 2 16 in
    let* by = int_range 2 16 in
    let* bz = int_range 2 16 in
    let* u = int_range 0 8 in
    let* c = int_range 1 9 in
    let* kidx = int_range 0 8 in
    return (bx, by, bz, u, c, kidx))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:60 ~name:"any schedule preserves stencil semantics"
         gen_case
         (fun (bx, by, bz, u, c, kidx) ->
           let k = List.nth Benchmarks.kernels kidx in
           let dims = Kernel.dims k in
           let t =
             Tuning.create ~bx ~by ~bz:(if dims = 2 then 1 else bz) ~u ~c
           in
           agree k (if dims = 2 then 14 else 9) t));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:100 ~name:"tiles partition any rectangular grid"
         QCheck2.Gen.(
           let* sx = int_range 3 30 in
           let* sy = int_range 3 30 in
           let* sz = int_range 3 30 in
           let* bx = int_range 2 32 in
           let* by = int_range 2 32 in
           let* bz = int_range 2 32 in
           return (sx, sy, sz, bx, by, bz))
         (fun (sx, sy, sz, bx, by, bz) ->
           let inst = Instance.create_xyz Benchmarks.laplacian ~sx ~sy ~sz in
           let s = Schedule.create inst (Tuning.create ~bx ~by ~bz ~u:1 ~c:1) in
           let total = ref 0 in
           for i = 0 to Schedule.num_tiles s - 1 do
             total := !total + Schedule.tile_points (Schedule.tile s i)
           done;
           !total = sx * sy * sz));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:40 ~name:"temporal blocking preserves semantics"
         QCheck2.Gen.(
           let* tb = int_range 1 4 in
           let* steps = int_range 1 6 in
           let* bx = int_range 2 8 in
           let* by = int_range 2 8 in
           return (tb, steps, bx, by))
         (fun (tb, steps, bx, by) ->
           let inst = Instance.create_xyz Benchmarks.laplacian ~sx:8 ~sy:8 ~sz:8 in
           let v = Variant.compile inst (Tuning.create ~bx ~by ~bz:4 ~u:1 ~c:2) in
           let inputs, out_t = Interp.make_grids ~seed:5 inst in
           Temporal.run v ~time_block:tb ~steps ~inputs ~output:out_t;
           let ref_inputs = Array.map Sorl_grid.Grid.copy inputs in
           let out_r = Sorl_grid.Grid.copy out_t in
           Sorl_grid.Grid.fill out_r 0.;
           Reference.step_count inst ~inputs:ref_inputs ~output:out_r ~steps;
           Sorl_grid.Grid.max_abs_diff out_t out_r < 1e-9));
  ]

let suite =
  [
    Alcotest.test_case "expr of kernel" `Quick test_expr_of_kernel;
    Alcotest.test_case "expr eval" `Quick test_expr_eval;
    Alcotest.test_case "expr to C" `Quick test_expr_to_c;
    Alcotest.test_case "schedule clamps" `Quick test_schedule_clamps;
    Alcotest.test_case "schedule 2d bz" `Quick test_schedule_2d_forces_bz;
    Alcotest.test_case "tiles cover grid" `Quick test_schedule_tiles_cover;
    Alcotest.test_case "chunk ranges partition" `Quick test_schedule_chunk_ranges_partition;
    Alcotest.test_case "assign chunks" `Quick test_assign_chunks_round_robin;
    Alcotest.test_case "interp = reference (all kernels)" `Quick
      test_interp_matches_reference_all_kernels;
    Alcotest.test_case "unroll remainder" `Quick test_interp_unroll_remainder;
    Alcotest.test_case "thread interleaving" `Quick test_interp_thread_interleaving_irrelevant;
    Alcotest.test_case "interp validation" `Quick test_interp_validation;
    Alcotest.test_case "reference step_count" `Quick test_reference_step_count;
    Alcotest.test_case "emit C structure" `Quick test_emit_c_structure;
    Alcotest.test_case "emit C no unroll" `Quick test_emit_c_no_unroll;
  ]
  @ qcheck_tests
