(* Tests for the rank-SVM library: dataset/pair construction, both
   solvers (including recovering a planted linear utility), the model
   and the evaluation metrics. *)

open Sorl_svmrank
module Sparse = Sorl_util.Sparse

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let feq = Alcotest.float 1e-9

let sample q fs rt =
  { Dataset.query = q; features = Sparse.of_dense fs; runtime = rt; tag = "" }

(* Table I of the paper: 4 instances, 3 executions each. *)
let table1 () =
  Dataset.create ~dim:2
    [
      sample 1 [| 0.1; 0.0 |] 0.012;
      sample 1 [| 0.2; 0.0 |] 0.013;
      sample 1 [| 0.3; 0.0 |] 0.020;
      sample 2 [| 0.1; 0.1 |] 0.010;
      sample 2 [| 0.2; 0.1 |] 0.036;
      sample 2 [| 0.3; 0.1 |] 0.035;
      sample 3 [| 0.1; 0.2 |] 0.030;
      sample 3 [| 0.2; 0.2 |] 0.045;
      sample 3 [| 0.3; 0.2 |] 0.047;
      sample 4 [| 0.1; 0.3 |] 0.025;
      sample 4 [| 0.2; 0.3 |] 0.021;
      sample 4 [| 0.3; 0.3 |] 0.012;
    ]

(* ---- Dataset ---- *)

let test_dataset_grouping () =
  let ds = table1 () in
  checki "samples" 12 (Dataset.num_samples ds);
  checki "queries" 4 (Dataset.num_queries ds);
  checki "query members" 3 (Array.length (Dataset.query_members ds 2));
  Alcotest.check_raises "unknown query" Not_found (fun () ->
      ignore (Dataset.query_members ds 99))

let test_dataset_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Dataset.create: empty") (fun () ->
      ignore (Dataset.create ~dim:2 []));
  Alcotest.check_raises "dim mismatch"
    (Invalid_argument "Dataset.create: feature dimension mismatch") (fun () ->
      ignore (Dataset.create ~dim:3 [ sample 1 [| 1.; 2. |] 1. ]));
  Alcotest.check_raises "bad runtime"
    (Invalid_argument "Dataset.create: runtime must be finite and positive") (fun () ->
      ignore (Dataset.create ~dim:1 [ sample 1 [| 1. |] 0. ]))

let test_pairs_within_query_only () =
  let ds = table1 () in
  let ps = Dataset.pairs ds in
  (* 4 queries x 3 strict pairs each (paper's transitive-closure count). *)
  checki "m' = 12" 12 (Array.length ps);
  checki "possible pairs" 12 (Dataset.num_possible_pairs ds);
  let samples = Dataset.samples ds in
  Array.iter
    (fun (slower, faster) ->
      checki "same query" samples.(slower).Dataset.query samples.(faster).Dataset.query;
      checkb "ordered" true
        (samples.(slower).Dataset.runtime > samples.(faster).Dataset.runtime))
    ps

let test_pairs_ties_skipped () =
  let ds =
    Dataset.create ~dim:1
      [ sample 1 [| 0.1 |] 1.0; sample 1 [| 0.2 |] 1.0; sample 1 [| 0.3 |] 2.0 ]
  in
  (* tie contributes no pair: only (2,0) and (2,1). *)
  checki "ties skipped" 2 (Array.length (Dataset.pairs ds))

let test_pairs_subsampling () =
  let ds = table1 () in
  let rng = Sorl_util.Rng.create 1 in
  let ps = Dataset.pairs ~max_per_query:1 ~rng ds in
  checki "capped" 4 (Array.length ps);
  Alcotest.check_raises "rng required" (Invalid_argument "Dataset.pairs: subsampling requires ~rng")
    (fun () -> ignore (Dataset.pairs ~max_per_query:1 ds))

let test_subset () =
  let ds = table1 () in
  let s = Dataset.subset ds 6 in
  checki "size" 6 (Dataset.num_samples s);
  checki "queries" 2 (Dataset.num_queries s);
  Alcotest.check_raises "oversize" (Invalid_argument "Dataset.subset: size out of range")
    (fun () -> ignore (Dataset.subset ds 13))

let test_split_queries () =
  let ds = table1 () in
  let rng = Sorl_util.Rng.create 7 in
  let tr, va = Dataset.split_queries ~rng ds ~fraction:0.5 in
  checki "total preserved" 12 (Dataset.num_samples tr + Dataset.num_samples va);
  (* no query appears on both sides *)
  let qs d = Array.to_list (Dataset.query_ids d) in
  List.iter (fun q -> checkb "disjoint" false (List.mem q (qs va))) (qs tr)

(* ---- Solver_common ---- *)

let test_pair_diffs_sparse () =
  let ds = table1 () in
  let ps = Dataset.pairs ds in
  let zs = Solver_common.pair_diffs ds ps in
  Array.iter
    (fun z ->
      (* within-query diffs cancel the constant second coordinate *)
      checki "only coordinate 0 differs" 1 (Sparse.nnz z))
    zs

let test_objective_at_zero () =
  let ds = table1 () in
  let zs = Solver_common.pair_diffs ds (Dataset.pairs ds) in
  let w0 = Array.make 2 0. in
  (* F(0) = C/m * sum(1) = C. *)
  Alcotest.check feq "objective at 0" 100. (Solver_common.objective ~c:100. zs w0);
  Alcotest.check feq "all pairs violated at 0" 1. (Solver_common.hinge_error_rate zs w0)

(* ---- Solvers ---- *)

(* Planted model: utility = 3*x0 - 2*x1 (+ tiny noise-free), runtimes
   follow it exactly.  Both solvers must recover the ranking. *)
let planted_dataset ?(n_queries = 12) ?(per_query = 8) () =
  let rng = Sorl_util.Rng.create 42 in
  let samples = ref [] in
  for q = 0 to n_queries - 1 do
    let base = Sorl_util.Rng.uniform rng in
    for _ = 0 to per_query - 1 do
      let x0 = Sorl_util.Rng.uniform rng and x1 = Sorl_util.Rng.uniform rng in
      (* exp keeps runtimes positive while preserving the utility's
         ordering exactly *)
      let rt = 1e-3 *. exp (base +. (3. *. x0) -. (2. *. x1)) in
      samples := sample q [| x0; x1; base |] rt :: !samples
    done
  done;
  Dataset.create ~dim:3 !samples

let recovers_ranking train_fn =
  let ds = planted_dataset () in
  let model = train_fn ds in
  Eval.mean_tau model ds > 0.95

let test_sgd_recovers_planted () =
  checkb "sgd recovers" true (recovers_ranking (fun ds -> Solver_sgd.train ds))

let test_dcd_recovers_planted () =
  checkb "dcd recovers" true (recovers_ranking (fun ds -> Solver_dcd.train ds))

let test_dcd_reduces_objective () =
  let ds = planted_dataset () in
  let ps = Dataset.pairs ds in
  let zs = Solver_common.pair_diffs ds ps in
  let model = Solver_dcd.train_on_pairs ~dim:3 zs in
  let w = Model.weights model in
  let f0 = Solver_common.objective ~c:100. zs (Array.make 3 0.) in
  let f = Solver_common.objective ~c:100. zs w in
  checkb "objective decreased" true (f < f0)

let test_sgd_reduces_objective () =
  let ds = planted_dataset () in
  let zs = Solver_common.pair_diffs ds (Dataset.pairs ds) in
  let model = Solver_sgd.train_on_pairs ~dim:3 zs in
  let f0 = Solver_common.objective ~c:100. zs (Array.make 3 0.) in
  let f = Solver_common.objective ~c:100. zs (Model.weights model) in
  checkb "objective decreased" true (f < f0)

let test_solvers_agree_on_direction () =
  let ds = planted_dataset () in
  let m1 = Solver_sgd.train ds in
  let m2 = Solver_dcd.train ds in
  (* same sign structure on the informative coordinates *)
  let w1 = Model.weights m1 and w2 = Model.weights m2 in
  checkb "x0 positive (slower)" true (w1.(0) > 0. && w2.(0) > 0.);
  checkb "x1 negative" true (w1.(1) < 0. && w2.(1) < 0.)

let test_solver_determinism () =
  let ds = planted_dataset () in
  let w1 = Model.weights (Solver_sgd.train ds) in
  let w2 = Model.weights (Solver_sgd.train ds) in
  checkb "sgd deterministic" true (w1 = w2);
  let w3 = Model.weights (Solver_dcd.train ds) in
  let w4 = Model.weights (Solver_dcd.train ds) in
  checkb "dcd deterministic" true (w3 = w4)

let test_solver_validation () =
  let ds = planted_dataset () in
  Alcotest.check_raises "sgd bad C" (Invalid_argument "Solver_sgd: C must be positive")
    (fun () ->
      ignore
        (Solver_sgd.train ~params:{ Solver_sgd.default_params with Solver_sgd.c = 0. } ds));
  Alcotest.check_raises "dcd no pairs" (Invalid_argument "Solver_dcd: no pairs") (fun () ->
      ignore (Solver_dcd.train_on_pairs ~dim:2 [||]))

let test_untrainable_dataset_rejected () =
  (* One sample per query -> no pairs. *)
  let ds = Dataset.create ~dim:1 [ sample 1 [| 0.5 |] 1.; sample 2 [| 0.7 |] 2. ] in
  Alcotest.check_raises "sgd" (Invalid_argument "Solver_sgd.train: dataset exposes no pairs")
    (fun () -> ignore (Solver_sgd.train ds))

(* ---- Model ---- *)

let test_model_rank_stable () =
  let model = Model.create [| 1.; 0. |] in
  let c v = Sparse.of_dense v in
  let order = Model.rank model [| c [| 3.; 0. |]; c [| 1.; 0. |]; c [| 2.; 0. |] |] in
  Alcotest.(check (array int)) "ascending score" [| 1; 2; 0 |] order;
  checki "best" 1 (Model.best model [| c [| 3.; 0. |]; c [| 1.; 0. |]; c [| 2.; 0. |] |]);
  Alcotest.check_raises "empty" (Invalid_argument "Model.best: no candidates") (fun () ->
      ignore (Model.best model [||]))

let test_model_serialization () =
  let model = Model.create [| 0.5; 0.; -1.25 |] in
  let s = Model.to_string model in
  let model' = Model.of_string s in
  checkb "weights roundtrip" true (Model.weights model = Model.weights model');
  let path = Filename.temp_file "sorl" ".model" in
  Model.save model path;
  let loaded = Model.load path in
  Sys.remove path;
  checkb "file roundtrip" true (Model.weights model = Model.weights loaded)

let test_model_of_string_errors () =
  checkb "bad magic" true
    (try
       ignore (Model.of_string "garbage\ndim 2\n");
       false
     with Failure _ -> true);
  checkb "truncated" true
    (try
       ignore (Model.of_string "sorl-rank-model 1\n");
       false
     with Failure _ -> true)

(* ---- Eval ---- *)

let test_eval_perfect_model () =
  let ds = table1 () in
  (* score = x0 replicates the runtime ordering within queries 1 and 3,
     not 2 and 4; a handcrafted perfect model scores by runtime. *)
  let samples = Dataset.samples ds in
  ignore samples;
  let model = Model.create [| 1.; 0. |] in
  let rs = Eval.per_query model ds in
  checki "4 queries" 4 (Array.length rs);
  (* query 1: runtimes increase with x0 -> tau = 1, zero regret *)
  let q1 = rs.(0) in
  Alcotest.check feq "q1 tau" 1. q1.Eval.tau;
  Alcotest.check feq "q1 regret" 0. q1.Eval.top1_regret;
  (* query 4: runtimes decrease with x0 -> tau = -1 *)
  let q4 = rs.(3) in
  Alcotest.check feq "q4 tau" (-1.) q4.Eval.tau;
  checkb "q4 regret positive" true (q4.Eval.top1_regret > 0.)

let test_eval_swapped_rate () =
  let ds = table1 () in
  let model = Model.create [| 1.; 0. |] in
  (* queries 1,3 perfect (6 pairs), query 2 has 1 swapped of 3, query 4
     all 3 swapped -> 4/12. *)
  Alcotest.check feq "swapped rate" (4. /. 12.) (Eval.swapped_pair_rate model ds)

let test_cross_validation () =
  let ds = planted_dataset ~n_queries:10 () in
  let taus = Eval.cross_validate ~folds:5 ~train:(fun d -> Solver_dcd.train d) ds in
  checki "5 folds" 5 (Array.length taus);
  Array.iter (fun t -> checkb "held-out tau high" true (t > 0.8)) taus

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:50 ~name:"planted utility recovered across seeds"
         QCheck2.Gen.(int_range 0 1000)
         (fun seed ->
           let rng = Sorl_util.Rng.create seed in
           let samples = ref [] in
           for q = 0 to 5 do
             for _ = 0 to 9 do
               let x0 = Sorl_util.Rng.uniform rng and x1 = Sorl_util.Rng.uniform rng in
               samples := sample q [| x0; x1 |] (0.1 +. (2. *. x0) +. x1) :: !samples
             done
           done;
           let ds = Dataset.create ~dim:2 !samples in
           let model = Solver_dcd.train ds in
           Eval.mean_tau model ds > 0.8));
  ]

let suite =
  [
    Alcotest.test_case "dataset grouping" `Quick test_dataset_grouping;
    Alcotest.test_case "dataset validation" `Quick test_dataset_validation;
    Alcotest.test_case "pairs within query" `Quick test_pairs_within_query_only;
    Alcotest.test_case "pairs skip ties" `Quick test_pairs_ties_skipped;
    Alcotest.test_case "pairs subsampling" `Quick test_pairs_subsampling;
    Alcotest.test_case "subset" `Quick test_subset;
    Alcotest.test_case "query split" `Quick test_split_queries;
    Alcotest.test_case "pair diffs sparse" `Quick test_pair_diffs_sparse;
    Alcotest.test_case "objective at zero" `Quick test_objective_at_zero;
    Alcotest.test_case "sgd recovers planted" `Quick test_sgd_recovers_planted;
    Alcotest.test_case "dcd recovers planted" `Quick test_dcd_recovers_planted;
    Alcotest.test_case "dcd reduces objective" `Quick test_dcd_reduces_objective;
    Alcotest.test_case "sgd reduces objective" `Quick test_sgd_reduces_objective;
    Alcotest.test_case "solvers agree" `Quick test_solvers_agree_on_direction;
    Alcotest.test_case "solver determinism" `Quick test_solver_determinism;
    Alcotest.test_case "solver validation" `Quick test_solver_validation;
    Alcotest.test_case "untrainable dataset" `Quick test_untrainable_dataset_rejected;
    Alcotest.test_case "model rank" `Quick test_model_rank_stable;
    Alcotest.test_case "model serialization" `Quick test_model_serialization;
    Alcotest.test_case "model parse errors" `Quick test_model_of_string_errors;
    Alcotest.test_case "eval per query" `Quick test_eval_perfect_model;
    Alcotest.test_case "eval swapped rate" `Quick test_eval_swapped_rate;
    Alcotest.test_case "cross validation" `Quick test_cross_validation;
  ]
  @ qcheck_tests
