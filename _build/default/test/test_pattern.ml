(* Tests for Sorl_stencil.Pattern — the §III-A shape encoding. *)

open Sorl_stencil

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_constants () =
  checki "max offset" 3 Pattern.max_offset;
  checki "side" 7 Pattern.side;
  checki "cells" 343 Pattern.cells

let test_of_offsets_dedup_sort () =
  let p = Pattern.of_offsets [ (1, 0, 0); (0, 0, 0); (1, 0, 0) ] in
  checki "deduplicated" 2 (Pattern.num_points p);
  checkb "mem" true (Pattern.mem p (1, 0, 0));
  checkb "not mem" false (Pattern.mem p (0, 1, 0))

let test_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Pattern.of_offsets: empty pattern")
    (fun () -> ignore (Pattern.of_offsets []));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Pattern.of_offsets: offset out of range") (fun () ->
      ignore (Pattern.of_offsets [ (4, 0, 0) ]))

let test_cell_index_roundtrip () =
  for i = 0 to Pattern.cells - 1 do
    checki "roundtrip" i (Pattern.cell_index (Pattern.offset_of_cell i))
  done;
  checki "center cell" ((Pattern.cells - 1) / 2) (Pattern.cell_index (0, 0, 0))

let test_mask_roundtrip () =
  let p = Pattern.laplacian ~dims:3 ~reach:2 in
  let m = Pattern.to_mask p in
  checki "mask length" Pattern.cells (Array.length m);
  let ones = Array.fold_left (fun acc v -> acc + int_of_float v) 0 m in
  checki "mask ones = points" (Pattern.num_points p) ones;
  checkb "roundtrip" true (Pattern.equal p (Pattern.of_mask m))

let test_line () =
  let p = Pattern.line ~axis:Pattern.Y ~reach:2 in
  checki "5 points" 5 (Pattern.num_points p);
  checkb "along y" true (Pattern.mem p (0, -2, 0) && Pattern.mem p (0, 2, 0));
  checkb "2d" true (Pattern.is_2d p);
  Alcotest.check (Alcotest.triple Alcotest.int Alcotest.int Alcotest.int) "radius" (0, 2, 0)
    (Pattern.radius p)

let test_hypercube () =
  checki "3x3 square" 9 (Pattern.num_points (Pattern.hypercube ~dims:2 ~reach:1));
  checki "5x5 square" 25 (Pattern.num_points (Pattern.hypercube ~dims:2 ~reach:2));
  checki "3^3 cube" 27 (Pattern.num_points (Pattern.hypercube ~dims:3 ~reach:1));
  checkb "2d flag" true (Pattern.is_2d (Pattern.hypercube ~dims:2 ~reach:2));
  checkb "3d flag" false (Pattern.is_2d (Pattern.hypercube ~dims:3 ~reach:1))

let test_hyperplane () =
  let p = Pattern.hyperplane ~dims:3 ~reach:1 in
  checki "3x3 plane" 9 (Pattern.num_points p);
  checkb "planar" true (Pattern.is_2d p)

let test_laplacian_point_counts () =
  (* The classic star sizes from Table III. *)
  checki "5-point" 5 (Pattern.num_points (Pattern.laplacian ~dims:2 ~reach:1));
  checki "7-point" 7 (Pattern.num_points (Pattern.laplacian ~dims:3 ~reach:1));
  checki "13-point" 13 (Pattern.num_points (Pattern.laplacian ~dims:3 ~reach:2));
  checki "19-point" 19 (Pattern.num_points (Pattern.laplacian ~dims:3 ~reach:3))

let test_box () =
  let p = Pattern.box ~lo:(-1, -1, -1) ~hi:(2, 2, 2) in
  checki "tricubic 4x4x4" 64 (Pattern.num_points p);
  checkb "asymmetric corner" true (Pattern.mem p (2, 2, 2));
  checkb "outside" false (Pattern.mem p (-2, 0, 0));
  Alcotest.check_raises "lo > hi" (Invalid_argument "Pattern.box: lo > hi") (fun () ->
      ignore (Pattern.box ~lo:(1, 0, 0) ~hi:(0, 0, 0)))

let test_remove_center () =
  let p = Pattern.remove_center (Pattern.laplacian ~dims:3 ~reach:1) in
  checki "6 points" 6 (Pattern.num_points p);
  checkb "no center" false (Pattern.contains_center p);
  Alcotest.check_raises "would be empty"
    (Invalid_argument "Pattern.remove_center: pattern would be empty") (fun () ->
      ignore (Pattern.remove_center (Pattern.of_offsets [ (0, 0, 0) ])))

let test_union () =
  let a = Pattern.line ~axis:Pattern.X ~reach:1 in
  let b = Pattern.line ~axis:Pattern.Y ~reach:1 in
  let u = Pattern.union a b in
  checki "5-point star" 5 (Pattern.num_points u);
  checkb "idempotent" true (Pattern.equal u (Pattern.union u u))

let test_reach_validation () =
  Alcotest.check_raises "reach 0" (Invalid_argument "Pattern: reach out of [1, max_offset]")
    (fun () -> ignore (Pattern.line ~axis:Pattern.X ~reach:0));
  Alcotest.check_raises "reach 4" (Invalid_argument "Pattern: reach out of [1, max_offset]")
    (fun () -> ignore (Pattern.laplacian ~dims:3 ~reach:4));
  Alcotest.check_raises "dims" (Invalid_argument "Pattern: dims must be 2 or 3") (fun () ->
      ignore (Pattern.hypercube ~dims:1 ~reach:1))

let gen_offset =
  QCheck2.Gen.(
    let c = int_range (-Pattern.max_offset) Pattern.max_offset in
    triple c c c)

let gen_pattern = QCheck2.Gen.(list_size (int_range 1 30) gen_offset)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name:"mask roundtrip" gen_pattern (fun offs ->
           let p = Pattern.of_offsets offs in
           Pattern.equal p (Pattern.of_mask (Pattern.to_mask p))));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name:"union commutative"
         QCheck2.Gen.(pair gen_pattern gen_pattern)
         (fun (a, b) ->
           let pa = Pattern.of_offsets a and pb = Pattern.of_offsets b in
           Pattern.equal (Pattern.union pa pb) (Pattern.union pb pa)));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name:"radius bounds every offset" gen_pattern
         (fun offs ->
           let p = Pattern.of_offsets offs in
           let rx, ry, rz = Pattern.radius p in
           List.for_all
             (fun (dx, dy, dz) -> abs dx <= rx && abs dy <= ry && abs dz <= rz)
             (Pattern.offsets p)));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name:"num_points = |offsets| and sorted unique"
         gen_pattern (fun offs ->
           let p = Pattern.of_offsets offs in
           let l = Pattern.offsets p in
           List.length l = Pattern.num_points p
           && l = List.sort_uniq compare l));
  ]

let suite =
  [
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "of_offsets dedup" `Quick test_of_offsets_dedup_sort;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "cell index roundtrip" `Quick test_cell_index_roundtrip;
    Alcotest.test_case "mask roundtrip" `Quick test_mask_roundtrip;
    Alcotest.test_case "line" `Quick test_line;
    Alcotest.test_case "hypercube" `Quick test_hypercube;
    Alcotest.test_case "hyperplane" `Quick test_hyperplane;
    Alcotest.test_case "laplacian sizes" `Quick test_laplacian_point_counts;
    Alcotest.test_case "box" `Quick test_box;
    Alcotest.test_case "remove center" `Quick test_remove_center;
    Alcotest.test_case "union" `Quick test_union;
    Alcotest.test_case "reach validation" `Quick test_reach_validation;
  ]
  @ qcheck_tests
