(* Tests for the ranking-metric extras (precision@k, NDCG@k), model
   introspection (Explain), dataset serialization and the portfolio
   meta-search. *)

open Sorl_svmrank
module Sparse = Sorl_util.Sparse

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let feq = Alcotest.float 1e-9

let sample q fs rt =
  { Dataset.query = q; features = Sparse.of_dense fs; runtime = rt; tag = "t " ^ string_of_int q }

(* one query, runtimes ordered by the first coordinate *)
let simple_ds () =
  Dataset.create ~dim:2
    [
      sample 0 [| 0.1; 0.5 |] 1.;
      sample 0 [| 0.2; 0.5 |] 2.;
      sample 0 [| 0.3; 0.5 |] 3.;
      sample 0 [| 0.4; 0.5 |] 4.;
    ]

let perfect_model = Model.create [| 1.; 0. |]
let inverted_model = Model.create [| -1.; 0. |]

(* ---- precision@k / NDCG@k ---- *)

let test_precision_perfect () =
  let ds = simple_ds () in
  Alcotest.check feq "p@1" 1. (Eval.precision_at_k perfect_model ds ~k:1);
  Alcotest.check feq "p@2" 1. (Eval.precision_at_k perfect_model ds ~k:2);
  (* k beyond the query size degrades gracefully *)
  Alcotest.check feq "p@100" 1. (Eval.precision_at_k perfect_model ds ~k:100)

let test_precision_inverted () =
  let ds = simple_ds () in
  Alcotest.check feq "p@1 inverted" 0. (Eval.precision_at_k inverted_model ds ~k:1);
  (* top-2 of the inversion are the bottom-2 of the truth *)
  Alcotest.check feq "p@2 inverted" 0. (Eval.precision_at_k inverted_model ds ~k:2);
  Alcotest.check feq "p@4 trivially 1" 1. (Eval.precision_at_k inverted_model ds ~k:4)

let test_ndcg_bounds () =
  let ds = simple_ds () in
  Alcotest.check feq "ndcg perfect" 1. (Eval.ndcg_at_k perfect_model ds ~k:4);
  let bad = Eval.ndcg_at_k inverted_model ds ~k:4 in
  checkb "ndcg inverted below 1" true (bad < 1.);
  checkb "ndcg positive" true (bad > 0.)

let test_metric_validation () =
  let ds = simple_ds () in
  Alcotest.check_raises "k >= 1" (Invalid_argument "Eval.precision_at_k: k must be >= 1")
    (fun () -> ignore (Eval.precision_at_k perfect_model ds ~k:0));
  Alcotest.check_raises "ndcg k >= 1" (Invalid_argument "Eval.ndcg_at_k: k must be >= 1")
    (fun () -> ignore (Eval.ndcg_at_k perfect_model ds ~k:0))

(* ---- Explain ---- *)

let names3 = [| "alpha"; "beta_x"; "pat(0,0,0)" |]

let test_top_weights () =
  let model = Model.create [| 0.1; -2.; 0. |] in
  let top = Explain.top_weights ~names:names3 ~k:2 model in
  checki "two nonzero weights" 2 (List.length top);
  (match top with
  | first :: _ ->
    Alcotest.check Alcotest.string "largest magnitude first" "beta_x" first.Explain.name;
    Alcotest.check feq "weight" (-2.) first.Explain.weight
  | [] -> Alcotest.fail "no weights");
  Alcotest.check_raises "names arity"
    (Invalid_argument "Explain: names arity does not match model dimension") (fun () ->
      ignore (Explain.top_weights ~names:[| "a" |] model))

let test_score_breakdown_sums () =
  let model = Model.create [| 0.5; -1.; 3. |] in
  let phi = Sparse.of_dense [| 1.; 2.; 0. |] in
  let parts = Explain.score_breakdown ~names:names3 model phi in
  let total = List.fold_left (fun acc c -> acc +. c.Explain.weight) 0. parts in
  Alcotest.check feq "breakdown sums to score" (Model.score model phi) total;
  checki "zero-weight entries dropped" 2 (List.length parts)

let test_weight_mass_groups () =
  let model = Model.create [| 1.; 1.; 2. |] in
  let groups = Explain.weight_mass_by_group ~names:names3 model in
  let total = List.fold_left (fun acc (_, m) -> acc +. m) 0. groups in
  Alcotest.check feq "shares sum to 1" 1. total;
  (match groups with
  | (g, share) :: _ ->
    Alcotest.check Alcotest.string "pattern group dominates" "pat" g;
    Alcotest.check feq "share" 0.5 share
  | [] -> Alcotest.fail "no groups")

(* ---- Dataset serialization ---- *)

let test_dataset_roundtrip () =
  let ds = simple_ds () in
  let ds' = Dataset.of_string (Dataset.to_string ds) in
  checki "samples" (Dataset.num_samples ds) (Dataset.num_samples ds');
  checki "dim" (Dataset.dim ds) (Dataset.dim ds');
  let a = Dataset.samples ds and b = Dataset.samples ds' in
  Array.iteri
    (fun i s ->
      checki "query" s.Dataset.query b.(i).Dataset.query;
      Alcotest.check feq "runtime" s.Dataset.runtime b.(i).Dataset.runtime;
      checkb "features" true (Sparse.equal s.Dataset.features b.(i).Dataset.features);
      Alcotest.check Alcotest.string "tag" s.Dataset.tag b.(i).Dataset.tag)
    a

let test_dataset_file_roundtrip () =
  let ds = simple_ds () in
  let path = Filename.temp_file "sorl" ".dataset" in
  Dataset.save ds path;
  let ds' = Dataset.load path in
  Sys.remove path;
  checki "samples" (Dataset.num_samples ds) (Dataset.num_samples ds')

let test_dataset_parse_errors () =
  checkb "bad header rejected" true
    (try
       ignore (Dataset.of_string "nonsense\n");
       false
     with Failure _ -> true);
  checkb "bad sample rejected" true
    (try
       ignore (Dataset.of_string "sorl-dataset 1 dim 2 samples 1\n0\n");
       false
     with Failure _ -> true)

(* ---- Portfolio meta-search ---- *)

let sphere =
  Sorl_search.Problem.create
    ~bounds:[| (2, 1024); (2, 1024); (0, 8) |]
    ~eval:(fun p ->
      let d0 = float_of_int (p.(0) - 300) and d1 = float_of_int (p.(1) - 300) in
      let d2 = float_of_int (p.(2) - 4) in
      (d0 *. d0) +. (d1 *. d1) +. (100. *. d2 *. d2))

let test_portfolio_respects_budget () =
  let outcome, winner = Sorl_search.Portfolio.run ~seed:3 ~budget:512 sphere in
  checki "budget honoured" 512 outcome.Sorl_search.Runner.evaluations;
  checkb "winner named" true
    (List.exists
       (fun a -> String.equal a.Sorl_search.Registry.name winner)
       Sorl_search.Registry.all)

let test_portfolio_quality () =
  let outcome, _ = Sorl_search.Portfolio.run ~seed:3 ~budget:512 sphere in
  let random = (Sorl_search.Registry.find "random").Sorl_search.Registry.run ~seed:3 ~budget:512 sphere in
  checkb "portfolio beats random" true
    (outcome.Sorl_search.Runner.best_cost <= random.Sorl_search.Runner.best_cost)

let test_portfolio_validation () =
  Alcotest.check_raises "empty list" (Invalid_argument "Portfolio.run: empty algorithm list")
    (fun () -> ignore (Sorl_search.Portfolio.run ~algorithms:[] sphere));
  Alcotest.check_raises "tiny budget"
    (Invalid_argument "Portfolio.run: budget too small for the portfolio") (fun () ->
      ignore (Sorl_search.Portfolio.run ~budget:8 sphere))

let test_portfolio_deterministic () =
  let o1, w1 = Sorl_search.Portfolio.run ~seed:5 ~budget:256 sphere in
  let o2, w2 = Sorl_search.Portfolio.run ~seed:5 ~budget:256 sphere in
  checkb "same winner" true (String.equal w1 w2);
  Alcotest.check feq "same cost" o1.Sorl_search.Runner.best_cost o2.Sorl_search.Runner.best_cost

let suite =
  [
    Alcotest.test_case "precision@k perfect" `Quick test_precision_perfect;
    Alcotest.test_case "precision@k inverted" `Quick test_precision_inverted;
    Alcotest.test_case "ndcg bounds" `Quick test_ndcg_bounds;
    Alcotest.test_case "metric validation" `Quick test_metric_validation;
    Alcotest.test_case "explain top weights" `Quick test_top_weights;
    Alcotest.test_case "explain breakdown" `Quick test_score_breakdown_sums;
    Alcotest.test_case "explain groups" `Quick test_weight_mass_groups;
    Alcotest.test_case "dataset roundtrip" `Quick test_dataset_roundtrip;
    Alcotest.test_case "dataset file roundtrip" `Quick test_dataset_file_roundtrip;
    Alcotest.test_case "dataset parse errors" `Quick test_dataset_parse_errors;
    Alcotest.test_case "portfolio budget" `Quick test_portfolio_respects_budget;
    Alcotest.test_case "portfolio quality" `Quick test_portfolio_quality;
    Alcotest.test_case "portfolio validation" `Quick test_portfolio_validation;
    Alcotest.test_case "portfolio determinism" `Quick test_portfolio_deterministic;
  ]
