(* Tests for Sorl_util.Rng: determinism, ranges, distributional sanity
   and the helpers used by the search/training code. *)

open Sorl_util

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool

let test_determinism () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Rng.bits64 a) (Rng.bits64 b)) then differs := true
  done;
  checkb "different seeds differ" true !differs

let test_copy_independent () =
  let a = Rng.create 5 in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  Alcotest.check Alcotest.int64 "copy continues identically" (Rng.bits64 a) (Rng.bits64 b);
  (* advancing one does not affect the other *)
  let _ = Rng.bits64 a in
  let va = Rng.bits64 a and vb = Rng.bits64 b in
  checkb "streams diverge after unequal advances" false (Int64.equal va vb)

let test_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let va = Rng.bits64 a and vb = Rng.bits64 b in
  checkb "split produces a distinct stream" false (Int64.equal va vb)

let test_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 13 in
    checkb "int in [0,13)" true (v >= 0 && v < 13)
  done

let test_int_rejects_nonpositive () =
  let rng = Rng.create 7 in
  Alcotest.check_raises "n = 0 rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_in_inclusive () =
  let rng = Rng.create 7 in
  let seen_lo = ref false and seen_hi = ref false in
  for _ = 1 to 2000 do
    let v = Rng.int_in rng 3 6 in
    checkb "in [3,6]" true (v >= 3 && v <= 6);
    if v = 3 then seen_lo := true;
    if v = 6 then seen_hi := true
  done;
  checkb "lo reachable" true !seen_lo;
  checkb "hi reachable" true !seen_hi

let test_int_in_singleton () =
  let rng = Rng.create 9 in
  check Alcotest.int "singleton range" 4 (Rng.int_in rng 4 4)

let test_uniform_range_and_mean () =
  let rng = Rng.create 11 in
  let n = 20000 in
  let acc = ref 0. in
  for _ = 1 to n do
    let u = Rng.uniform rng in
    checkb "u in [0,1)" true (u >= 0. && u < 1.);
    acc := !acc +. u
  done;
  let mean = !acc /. float_of_int n in
  checkb "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_gaussian_moments () =
  let rng = Rng.create 13 in
  let n = 20000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng) in
  let mean = Stats.mean xs and sd = Stats.stddev xs in
  checkb "gaussian mean ~ 0" true (Float.abs mean < 0.05);
  checkb "gaussian sd ~ 1" true (Float.abs (sd -. 1.) < 0.05)

let test_shuffle_permutation () =
  let rng = Rng.create 17 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_choose () =
  let rng = Rng.create 19 in
  let a = [| 1; 2; 3 |] in
  for _ = 1 to 50 do
    checkb "choose returns member" true (Array.mem (Rng.choose rng a) a)
  done;
  Alcotest.check_raises "empty rejected" (Invalid_argument "Rng.choose: empty array")
    (fun () -> ignore (Rng.choose rng [||]))

let test_sample_without_replacement () =
  let rng = Rng.create 23 in
  (* both the dense and the sparse internal paths *)
  List.iter
    (fun (k, n) ->
      let s = Rng.sample_without_replacement rng k n in
      check Alcotest.int "count" k (Array.length s);
      let tbl = Hashtbl.create k in
      Array.iter
        (fun v ->
          checkb "in range" true (v >= 0 && v < n);
          checkb "distinct" false (Hashtbl.mem tbl v);
          Hashtbl.add tbl v ())
        s)
    [ (10, 12); (5, 1000); (0, 4); (7, 7) ]

let test_hash_noise_stable () =
  let a = Rng.hash_noise ~seed:1 ~key:42 in
  let b = Rng.hash_noise ~seed:1 ~key:42 in
  check (Alcotest.float 0.) "stable" a b;
  let c = Rng.hash_noise ~seed:2 ~key:42 in
  let d = Rng.hash_noise ~seed:1 ~key:43 in
  checkb "seed-sensitive" false (a = c);
  checkb "key-sensitive" false (a = d);
  checkb "in [0,1)" true (a >= 0. && a < 1.)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:200 ~name:"int always within bound"
         QCheck2.Gen.(pair (int_range 0 1000) (int_range 1 500))
         (fun (seed, n) ->
           let rng = Rng.create seed in
           let v = Rng.int rng n in
           v >= 0 && v < n));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:100 ~name:"sample_without_replacement distinct"
         QCheck2.Gen.(pair (int_range 0 1000) (int_range 1 60))
         (fun (seed, n) ->
           let rng = Rng.create seed in
           let k = min n (n / 2) in
           let s = Rng.sample_without_replacement rng k n in
           let l = Array.to_list s in
           List.length (List.sort_uniq compare l) = k));
  ]

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "int range" `Quick test_int_range;
    Alcotest.test_case "int rejects nonpositive" `Quick test_int_rejects_nonpositive;
    Alcotest.test_case "int_in inclusive" `Quick test_int_in_inclusive;
    Alcotest.test_case "int_in singleton" `Quick test_int_in_singleton;
    Alcotest.test_case "uniform range and mean" `Quick test_uniform_range_and_mean;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "choose" `Quick test_choose;
    Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "hash_noise stability" `Quick test_hash_noise_stable;
  ]
  @ qcheck_tests
