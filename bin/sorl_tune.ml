(* sorl-tune: command-line front end of the ordinal-regression stencil
   autotuner.

   Subcommands:
     list       show the Table III benchmarks and training shapes
     train      generate a training set on the cost model and fit a model
     rank       rank the pre-defined configuration set for a benchmark
     tune       end-to-end: train (or load) a model and print the chosen
                configuration, with optional measured verification
     search     run an iterative-compilation baseline on a benchmark
     emit       print the generated C for a benchmark + tuning vector
     serve      expose rank/tune over a unix or TCP socket
     query      talk to a running serve instance
     learn      replay an observation log, retrain, publish, canary *)

(* Must run before anything else: a fleet shard is a re-execution of
   this binary, dispatched on the SORL_FLEET_SHARD environment
   variable (see Fleet.maybe_shard_main). *)
let () = Sorl_serve.Fleet.maybe_shard_main ()

open Cmdliner
open Sorl_stencil

let default_machine = Sorl_machine.Machine_desc.xeon_e5_2680_v3

let measure_of ~noise ~seed =
  Sorl_machine.Measure.model ~noise_amplitude:noise ~seed default_machine

(* ---- shared arguments ---- *)

let benchmark_arg =
  let doc = "Benchmark instance name, e.g. gradient-256x256x256 (see `sorl_tune list')." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK" ~doc)

let size_arg =
  let doc = "Training-set size (number of stencil executions)." in
  Arg.(value & opt int 3840 & info [ "size"; "s" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 5 & info [ "seed" ] ~docv:"SEED" ~doc)

let noise_arg =
  let doc = "Relative measurement-noise amplitude of the cost-model backend." in
  Arg.(value & opt float 0.02 & info [ "noise" ] ~docv:"AMP" ~doc)

let model_file_arg =
  let doc = "Model file path." in
  Arg.(value & opt string "sorl.model" & info [ "model"; "m" ] ~docv:"FILE" ~doc)

let mode_arg =
  let doc = "Feature encoding: canonical (literal paper encoding) or extended." in
  let mode_conv =
    Arg.conv
      ( (fun s ->
          try Ok (Features.mode_of_string s) with Invalid_argument m -> Error (`Msg m)),
        fun ppf m -> Format.pp_print_string ppf (Features.mode_to_string m) )
  in
  Arg.(value & opt mode_conv Features.Extended & info [ "features" ] ~docv:"MODE" ~doc)

let trace_arg =
  let doc = "Enable telemetry (spans, counters, histograms) and print the trace summary." in
  Arg.(value & flag & info [ "trace" ] ~doc)

let trace_out_arg =
  let doc = "Write a Chrome trace-event JSON report to $(docv) (implies $(b,--trace))." in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

(* Runs [f] with telemetry enabled when requested, then prints the span
   tree / counters / histograms and writes the Chrome-trace JSON. *)
let with_trace trace trace_out f =
  let tracing = trace || trace_out <> None in
  if tracing then begin
    Sorl_util.Telemetry.set_enabled true;
    Sorl_util.Telemetry.reset ()
  end;
  let r = f ~tracing () in
  if tracing then begin
    print_newline ();
    print_string (Sorl_util.Telemetry.summary ());
    Option.iter
      (fun path ->
        Sorl_util.Telemetry.write_chrome_json path;
        Printf.printf "trace written to %s\n" path)
      trace_out
  end;
  r

let lookup_instance name =
  match Benchmarks.instance_by_name name with
  | inst -> Ok inst
  | exception Not_found ->
    Error
      (`Msg
        (Printf.sprintf "unknown benchmark %S; try `sorl_tune list' for the available names"
           name))

(* ---- list ---- *)

let list_cmd =
  let run () =
    let open Sorl_util in
    print_endline "Test benchmarks (Table III):";
    let t = Table.create ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Left ]
        [ "benchmark"; "taps"; "buffers"; "type" ] in
    List.iter
      (fun inst ->
        let k = Instance.kernel inst in
        Table.add_row t
          [
            Instance.name inst;
            string_of_int (Kernel.taps k);
            string_of_int (Kernel.num_buffers k);
            Dtype.to_string (Kernel.dtype k);
          ])
      Benchmarks.instances;
    Table.print t;
    Printf.printf "\nTraining shapes: %d kernels, %d instances (see Fig. 1 / section V-B)\n"
      (List.length Training_shapes.kernels)
      (List.length Training_shapes.instances);
    Printf.printf "Search algorithms: %s\n"
      (String.concat ", " (Sorl_search.Registry.names ()))
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmarks, training shapes and search algorithms")
    Term.(const run $ const ())

(* ---- train ---- *)

let shapes_arg =
  let doc =
    "Train on only the first $(docv) of the 200 training shapes (quick smoke runs; the \
     training size must stay >= twice the instance count)."
  in
  Arg.(value & opt (some int) None & info [ "shapes" ] ~docv:"K" ~doc)

let train_instances = function
  | None -> Ok None
  | Some k when k >= 1 ->
    Ok (Some (List.filteri (fun i _ -> i < k) Training_shapes.instances))
  | Some _ -> Error (`Msg "--shapes must be >= 1")

let train_cmd =
  let run size seed noise mode model_file shapes trace trace_out =
    Result.bind (train_instances shapes) @@ fun instances ->
    with_trace trace trace_out @@ fun ~tracing () ->
    let measure = measure_of ~noise ~seed in
    let spec = { Sorl.Training.size; mode; seed } in
    Printf.printf "generating %d training executions on %s...\n%!" size
      (Sorl_machine.Measure.descr measure);
    let ds, gen_s =
      Sorl_util.Timer.time (fun () -> Sorl.Training.generate ~spec ?instances measure)
    in
    let tuner, train_s =
      Sorl_util.Timer.time (fun () -> Sorl.Autotuner.train_on ~mode ds)
    in
    let taus = Sorl_svmrank.Eval.taus (Sorl.Autotuner.model tuner) ds in
    Sorl.Autotuner.save tuner model_file;
    Printf.printf
      "trained on %d samples / %d instances in %s (generation %s)\n\
       training-set Kendall tau: mean %.3f, median %.3f\n\
       model written to %s\n"
      (Sorl_svmrank.Dataset.num_samples ds)
      (Sorl_svmrank.Dataset.num_queries ds)
      (Sorl_util.Table.fmt_time train_s) (Sorl_util.Table.fmt_time gen_s)
      (Sorl_util.Stats.mean taus) (Sorl_util.Stats.median taus) model_file;
    if tracing then
      Printf.printf "evaluations: %d measured (telemetry counter %d)\n"
        (Sorl_machine.Measure.evaluations measure)
        (Sorl_util.Telemetry.counter_value "measure.evaluations");
    Ok ()
  in
  Cmd.v (Cmd.info "train" ~doc:"Generate a training set and fit the ranking model")
    Term.(
      term_result
        (const run $ size_arg $ seed_arg $ noise_arg $ mode_arg $ model_file_arg $ shapes_arg
        $ trace_arg $ trace_out_arg))

(* ---- rank ---- *)

let top_arg =
  let doc = "How many top-ranked configurations to print." in
  Arg.(value & opt int 10 & info [ "top" ] ~docv:"K" ~doc)

let rank_cmd =
  let run name model_file top noise seed trace trace_out =
    Result.bind (lookup_instance name) (fun inst ->
        if not (Sys.file_exists model_file) then
          Error
            (`Msg
              (Printf.sprintf "model file %s not found; run `sorl_tune train' first"
                 model_file))
        else begin
          with_trace trace trace_out @@ fun ~tracing:_ () ->
          let tuner = Sorl.Autotuner.load model_file in
          let dims = Kernel.dims (Instance.kernel inst) in
          let set = Tuning.predefined_set ~dims in
          let ranked, rank_s =
            Sorl_util.Timer.time (fun () -> Sorl.Autotuner.rank tuner inst set)
          in
          Printf.printf "ranked %d configurations for %s in %s (no executions)\n"
            (Array.length set) name (Sorl_util.Table.fmt_time rank_s);
          let measure = measure_of ~noise ~seed in
          let t = Sorl_util.Table.create
              ~aligns:[ Sorl_util.Table.Right; Sorl_util.Table.Left; Sorl_util.Table.Right ]
              [ "rank"; "tuning"; "model-measured GF/s" ] in
          Array.iteri
            (fun i tn ->
              if i < top then
                Sorl_util.Table.add_row t
                  [
                    string_of_int (i + 1);
                    Tuning.to_string tn;
                    Printf.sprintf "%.2f" (Sorl_machine.Measure.gflops measure inst tn);
                  ])
            ranked;
          Sorl_util.Table.print t;
          Ok ()
        end)
  in
  Cmd.v
    (Cmd.info "rank" ~doc:"Rank the pre-defined configuration set for a benchmark")
    Term.(
      term_result
        (const run $ benchmark_arg $ model_file_arg $ top_arg $ noise_arg $ seed_arg $ trace_arg
        $ trace_out_arg))

(* ---- tune ---- *)

let verify_arg =
  let doc = "Measure the model's top-K predictions and report the verified best (hybrid mode)." in
  Arg.(value & opt int 0 & info [ "verify" ] ~docv:"K" ~doc)

let tune_cmd =
  let run name size seed noise mode verify trace trace_out =
    Result.bind (lookup_instance name) (fun inst ->
        with_trace trace trace_out @@ fun ~tracing () ->
        let measure = measure_of ~noise ~seed in
        let spec = { Sorl.Training.size; mode; seed } in
        Printf.printf "training (size %d)...\n%!" size;
        let tuner = Sorl.Autotuner.train ~spec measure in
        let best = Sorl.Autotuner.tune tuner inst in
        Printf.printf "standalone choice: %s (%.2f GF/s on the model)\n"
          (Tuning.to_string best)
          (Sorl_machine.Measure.gflops measure inst best);
        if verify > 0 then begin
          let tn, rt = Sorl.Hybrid.rank_then_measure tuner measure inst ~budget:verify in
          Printf.printf "hybrid (verify %d): %s (%.2f GF/s measured)\n" verify
            (Tuning.to_string tn)
            (Instance.total_flops inst /. rt /. 1e9)
        end;
        if tracing then
          Printf.printf "evaluations: %d measured (telemetry counter %d)\n"
            (Sorl_machine.Measure.evaluations measure)
            (Sorl_util.Telemetry.counter_value "measure.evaluations");
        Ok ())
  in
  Cmd.v
    (Cmd.info "tune" ~doc:"Train and pick the best configuration for a benchmark")
    Term.(
      term_result
        (const run $ benchmark_arg $ size_arg $ seed_arg $ noise_arg $ mode_arg $ verify_arg
        $ trace_arg $ trace_out_arg))

(* ---- search ---- *)

let algo_arg =
  let doc = "Search algorithm (ga, de, es, sga, random, hill, bandit, sa, pso)." in
  Arg.(value & opt string "ga" & info [ "algo"; "a" ] ~docv:"ALGO" ~doc)

let budget_arg =
  let doc = "Evaluation budget." in
  Arg.(value & opt int 1024 & info [ "budget"; "b" ] ~docv:"N" ~doc)

let search_cmd =
  let run name algo budget noise seed trace trace_out =
    Result.bind (lookup_instance name) (fun inst ->
        match Sorl_search.Registry.find algo with
        | exception Not_found ->
          Error
            (`Msg
              (Printf.sprintf "unknown algorithm %S (available: %s)" algo
                 (String.concat ", " (Sorl_search.Registry.names ()))))
        | a ->
          with_trace trace trace_out @@ fun ~tracing:_ () ->
          let measure = measure_of ~noise ~seed in
          let problem = Sorl.Tuning_problem.problem measure inst in
          let outcome, wall =
            Sorl_util.Timer.time (fun () -> a.Sorl_search.Registry.run ~seed ~budget problem)
          in
          let best = Sorl.Tuning_problem.decode inst outcome.Sorl_search.Runner.best_point in
          Printf.printf
            "%s on %s: best %s\n  runtime %.6f s (%.2f GF/s), %d evaluations, wall %s\n"
            a.Sorl_search.Registry.descr name (Tuning.to_string best)
            outcome.Sorl_search.Runner.best_cost
            (Instance.total_flops inst /. outcome.Sorl_search.Runner.best_cost /. 1e9)
            outcome.Sorl_search.Runner.evaluations (Sorl_util.Table.fmt_time wall);
          Ok ())
  in
  Cmd.v
    (Cmd.info "search" ~doc:"Run an iterative-compilation search baseline")
    Term.(
      term_result
        (const run $ benchmark_arg $ algo_arg $ budget_arg $ noise_arg $ seed_arg $ trace_arg
        $ trace_out_arg))

(* ---- emit ---- *)

let tuning_arg =
  let doc = "Tuning vector as bx,by,bz,u,c." in
  let tuning_conv =
    Arg.conv
      ( (fun s ->
          match List.map int_of_string (String.split_on_char ',' s) with
          | [ bx; by; bz; u; c ] -> (
            try Ok (Tuning.create ~bx ~by ~bz ~u ~c)
            with Invalid_argument m -> Error (`Msg m))
          | _ | (exception Failure _) -> Error (`Msg "expected bx,by,bz,u,c")),
        fun ppf t -> Format.pp_print_string ppf (Tuning.to_string t) )
  in
  Arg.(value & opt tuning_conv (Tuning.default ~dims:3) & info [ "tuning"; "t" ] ~docv:"T" ~doc)

let emit_cmd =
  let run name tuning =
    Result.bind (lookup_instance name) (fun inst ->
        let tuning =
          if Kernel.dims (Instance.kernel inst) = 2 then { tuning with Tuning.bz = 1 }
          else tuning
        in
        print_string (Sorl_codegen.Emit_c.emit (Sorl_codegen.Variant.compile inst tuning));
        Ok ())
  in
  Cmd.v
    (Cmd.info "emit" ~doc:"Print the generated C code for a benchmark and tuning vector")
    Term.(term_result (const run $ benchmark_arg $ tuning_arg))

(* ---- inspect ---- *)

let inspect_cmd =
  let run model_file top =
    if not (Sys.file_exists model_file) then
      Error (`Msg (Printf.sprintf "model file %s not found" model_file))
    else begin
      let tuner = Sorl.Autotuner.load model_file in
      let mode = Sorl.Autotuner.feature_mode tuner in
      let names = Features.names mode in
      let model = Sorl.Autotuner.model tuner in
      Printf.printf "model: %d features (%s encoding)\n\n" (Sorl_svmrank.Model.dim model)
        (Features.mode_to_string mode);
      Printf.printf "weight mass by feature family (positive weight = predicts slower):\n";
      List.iter
        (fun (group, share) ->
          if share >= 0.005 then Printf.printf "  %-12s %5.1f%%\n" group (100. *. share))
        (Sorl_svmrank.Explain.weight_mass_by_group ~names model);
      Printf.printf "\ntop %d weights:\n" top;
      let t =
        Sorl_util.Table.create ~aligns:[ Sorl_util.Table.Left; Sorl_util.Table.Right ]
          [ "feature"; "weight" ]
      in
      List.iter
        (fun c ->
          Sorl_util.Table.add_row t
            [ c.Sorl_svmrank.Explain.name; Printf.sprintf "%+.4f" c.Sorl_svmrank.Explain.weight ])
        (Sorl_svmrank.Explain.top_weights ~names ~k:top model);
      Sorl_util.Table.print t;
      Ok ()
    end
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Show what a trained ranking model learned")
    Term.(term_result (const run $ model_file_arg $ top_arg))

(* ---- serve / query ---- *)

let address_conv =
  Arg.conv
    ( (fun s ->
        match Sorl_serve.Protocol.address_of_string s with
        | Ok a -> Ok a
        | Error m -> Error (`Msg m)),
      fun ppf a -> Format.pp_print_string ppf (Sorl_serve.Protocol.address_to_string a) )

(* Shared by `serve' and `fleet': a --store directory (imported from
   the --model file when the named model is absent) or the bare file. *)
let resolve_source ~model_file ~store ~name =
  match store with
  | None ->
    if Sys.file_exists model_file then Ok (Sorl_serve.Server.Model_file model_file)
    else
      Error
        (`Msg
          (Printf.sprintf "model file %s not found; run `sorl_tune train' first"
             model_file))
  | Some dir -> (
    match Sorl_serve.Model_store.open_dir dir with
    | Error m -> Error (`Msg m)
    | Ok st -> (
      let import =
        (* Seed the store from an existing single-file model so
           `train' output is servable without a separate step. *)
        if (not (List.mem name (Sorl_serve.Model_store.list st)))
           && Sys.file_exists model_file
        then
          match Sorl.Autotuner.load_result model_file with
          | Error m -> Error (`Msg m)
          | Ok tuner -> (
            match Sorl_serve.Model_store.save st ~name tuner with
            | Error m -> Error (`Msg m)
            | Ok () ->
              Printf.printf "imported %s into %s as %S\n%!" model_file dir name;
              Ok ())
        else Ok ()
      in
      match import with
      | Error _ as e -> e
      | Ok () -> Ok (Sorl_serve.Server.Store (st, name))))

let store_arg =
  let doc =
    "Serve from a model-store directory instead of a single file; enables switching \
     models with `reload <name>'.  When the store lacks $(b,--name) but the \
     $(b,--model) file exists, that file is imported into the store first."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let name_arg =
  let doc = "Model name to serve from the store." in
  Arg.(value & opt string "default" & info [ "name" ] ~docv:"NAME" ~doc)

let queue_arg =
  let doc = "Pending-connection queue capacity (beyond it, clients get `err busy')." in
  Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)

let timeout_s_arg =
  let doc = "Per-connection idle/write timeout in seconds." in
  Arg.(value & opt float 10. & info [ "timeout" ] ~docv:"S" ~doc)

let cache_arg =
  let doc =
    "Result-cache capacity in entries (0 disables caching).  Defaults to the \
     $(b,SORL_SERVE_CACHE) environment variable, else 1024."
  in
  Arg.(value & opt (some int) None & info [ "cache" ] ~docv:"N" ~doc)

let max_conns_arg =
  let doc = "Maximum concurrent connections; beyond it new clients get `err busy'." in
  Arg.(value & opt int 512 & info [ "max-connections" ] ~docv:"N" ~doc)

let serve_cmd =
  let listen_arg =
    let doc = "Address to listen on: unix:<path> or tcp:<host>:<port> (port 0 = ephemeral)." in
    Arg.(value & opt address_conv (Sorl_serve.Protocol.Unix_path "sorl.sock")
         & info [ "listen"; "l" ] ~docv:"ADDR" ~doc)
  in
  let workers_arg =
    let doc = "Worker domains (default: one per core)." in
    Arg.(value & opt (some int) None & info [ "workers"; "j" ] ~docv:"N" ~doc)
  in
  let no_warm_arg =
    let doc = "Skip pre-ranking every benchmark into the result cache at start/reload." in
    Arg.(value & flag & info [ "no-warm" ] ~doc)
  in
  let neighbors_arg =
    let doc = "Near-miss reuse index capacity; 0 disables provisional `rank!'/`tune!' replies." in
    Arg.(value & opt int 512 & info [ "neighbors" ] ~docv:"N" ~doc)
  in
  let neighbor_threshold_arg =
    let doc = "Cosine-distance threshold for near-miss reuse." in
    Arg.(value
         & opt float Sorl_serve.Server.default_neighbor_threshold
         & info [ "neighbor-threshold" ] ~docv:"D" ~doc)
  in
  let obs_log_arg =
    let doc =
      "Append `observe' requests to the segmented log at $(docv) (created if missing; \
       a v1 single-file log is migrated in place; enables the online-learning verbs \
       observe/canary/promote)."
    in
    Arg.(value & opt (some string) None & info [ "obs-log" ] ~docv:"PATH" ~doc)
  in
  let obs_roll_arg =
    let doc =
      "Seal the observation log's active tail into an immutable segment every $(docv) \
       records (0 disables rolling); sealed segments are what incremental retraining \
       reuses encoded features for."
    in
    Arg.(value & opt (some int) None & info [ "obs-roll" ] ~docv:"N" ~doc)
  in
  let obs_fsync_arg =
    let doc =
      "fsync each sealed observation segment (and the log directory) before exposing \
       it; also enabled by SORL_OBS_FSYNC=1."
    in
    Arg.(value & flag & info [ "obs-fsync" ] ~doc)
  in
  let canary_fraction_arg =
    let doc = "Fraction of rank/tune traffic shadow-scored while a canary is loaded." in
    Arg.(value & opt float 1. & info [ "canary-fraction" ] ~docv:"F" ~doc)
  in
  let run listen model_file store name workers queue timeout cache max_conns no_warm
      neighbors neighbor_threshold obs_log obs_roll obs_fsync canary_fraction trace
      trace_out =
    Result.bind (resolve_source ~model_file ~store ~name) @@ fun source ->
    with_trace trace trace_out @@ fun ~tracing:_ () ->
    match
      Sorl_serve.Server.start ~address:listen ?workers ~queue_capacity:queue
        ~conn_timeout_s:timeout ?cache_capacity:cache ~max_connections:max_conns
        ~warm:(not no_warm) ~neighbors ~neighbor_threshold ?obs_log ?obs_roll
        ?obs_fsync:(if obs_fsync then Some true else None)
        ~canary_fraction source
    with
    | Error m -> Error (`Msg m)
    | Ok server ->
      Printf.printf "serving on %s (send `sorl1 shutdown' or `sorl_tune query shutdown' to stop)\n%!"
        (Sorl_serve.Protocol.address_to_string (Sorl_serve.Server.address server));
      Sorl_serve.Server.wait server;
      Printf.printf "server stopped after %d requests\n"
        (Sorl_serve.Server.requests_served server);
      Ok ()
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Serve rank/tune queries over a socket (see README `Serving')")
    Term.(
      term_result
        (const run $ listen_arg $ model_file_arg $ store_arg $ name_arg $ workers_arg
        $ queue_arg $ timeout_s_arg $ cache_arg $ max_conns_arg $ no_warm_arg
        $ neighbors_arg $ neighbor_threshold_arg $ obs_log_arg $ obs_roll_arg
        $ obs_fsync_arg $ canary_fraction_arg $ trace_arg $ trace_out_arg))

let fleet_cmd =
  let listen_arg =
    let doc =
      "Router address to listen on: unix:<path> or tcp:<host>:<port> (port 0 = ephemeral)."
    in
    Arg.(value & opt address_conv (Sorl_serve.Protocol.Unix_path "sorl-router.sock")
         & info [ "listen"; "l" ] ~docv:"ADDR" ~doc)
  in
  let shards_arg =
    let doc = "Number of shard server processes to fork." in
    Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let dir_arg =
    let doc = "Directory for the shards' unix sockets (created if missing)." in
    Arg.(value & opt string "sorl-fleet" & info [ "dir" ] ~docv:"DIR" ~doc)
  in
  let shard_workers_arg =
    let doc = "Worker domains per shard (scale with shards, not workers)." in
    Arg.(value & opt int 1 & info [ "shard-workers" ] ~docv:"N" ~doc)
  in
  let router_workers_arg =
    let doc = "Router worker domains." in
    Arg.(value & opt int 4 & info [ "router-workers"; "j" ] ~docv:"N" ~doc)
  in
  let obs_dir_arg =
    let doc =
      "Give each shard its own observation log under $(docv) (created if missing) — \
       enables the online-learning verbs fleet-wide."
    in
    Arg.(value & opt (some string) None & info [ "obs-dir" ] ~docv:"DIR" ~doc)
  in
  let obs_roll_arg =
    let doc = "Per-shard observation-log segment roll threshold (0 disables rolling)." in
    Arg.(value & opt (some int) None & info [ "obs-roll" ] ~docv:"N" ~doc)
  in
  let obs_fsync_arg =
    let doc = "fsync each sealed observation segment; also enabled by SORL_OBS_FSYNC=1." in
    Arg.(value & flag & info [ "obs-fsync" ] ~doc)
  in
  let run listen shards dir model_file store name shard_workers router_workers queue
      timeout cache max_conns obs_dir obs_roll obs_fsync =
    Result.bind (resolve_source ~model_file ~store ~name) @@ fun source ->
    match
      Sorl_serve.Fleet.start ~dir ~shards ~workers:shard_workers ~queue_capacity:queue
        ~conn_timeout_s:timeout ?cache_capacity:cache ~max_connections:max_conns ?obs_dir
        ?obs_roll
        ?obs_fsync:(if obs_fsync then Some true else None)
        source
    with
    | Error m -> Error (`Msg m)
    | Ok fleet -> (
      match
        Sorl_serve.Router.start ~address:listen ~workers:router_workers
          ~queue_capacity:queue ~conn_timeout_s:timeout ~max_connections:max_conns
          (Sorl_serve.Fleet.addresses fleet)
      with
      | Error m ->
        Sorl_serve.Fleet.stop fleet;
        Error (`Msg m)
      | Ok router ->
        Printf.printf
          "fleet: %d shards under %s (pids %s), router on %s (send `sorl1 shutdown' or \
           `sorl_tune query shutdown' to stop)\n\
           %!"
          shards dir
          (String.concat "," (List.map string_of_int (Sorl_serve.Fleet.pids fleet)))
          (Sorl_serve.Protocol.address_to_string (Sorl_serve.Router.address router));
        Sorl_serve.Router.wait router;
        Sorl_serve.Fleet.stop fleet;
        Printf.printf "fleet stopped after %d routed requests\n"
          (Sorl_serve.Router.requests_routed router);
        Ok ())
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Serve through a sharded fleet: N forked shard servers behind a \
          consistent-hash router (see README `Fleet')")
    Term.(
      term_result
        (const run $ listen_arg $ shards_arg $ dir_arg $ model_file_arg $ store_arg
        $ name_arg $ shard_workers_arg $ router_workers_arg $ queue_arg $ timeout_s_arg
        $ cache_arg $ max_conns_arg $ obs_dir_arg $ obs_roll_arg $ obs_fsync_arg))

let query_cmd =
  let connect_arg =
    let doc = "Server address: unix:<path> or tcp:<host>:<port>." in
    Arg.(value & opt address_conv (Sorl_serve.Protocol.Unix_path "sorl.sock")
         & info [ "connect"; "c" ] ~docv:"ADDR" ~doc)
  in
  let wait_arg =
    let doc = "Keep retrying the connection for up to $(docv) seconds (server still starting)." in
    Arg.(value & opt float 0. & info [ "wait" ] ~docv:"S" ~doc)
  in
  let words_arg =
    let doc =
      "Query: `rank BENCHMARK', `tune BENCHMARK', `rank! BENCHMARK' / `tune! BENCHMARK' \
       (accept a provisional reply reused from a similar cached instance), `observe \
       BENCHMARK TUNING COST', `observe-batch BENCHMARK N [SEED]' (stream N synthetic \
       cost-model measurements), `info', `stats', `reload [NAME]', `canary NAME', \
       `promote' or `shutdown'."
    in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"QUERY" ~doc)
  in
  let print_kvs kvs =
    List.iter (fun (k, v) -> Printf.printf "%s: %s\n" k v) kvs
  in
  let run connect wait top words =
    let open Sorl_serve in
    let result =
      Client.with_connection ~retry_for_s:wait connect @@ fun c ->
      match words with
      | [ "rank"; benchmark ] ->
        Result.map
          (fun tunings ->
            List.iteri
              (fun i t -> Printf.printf "%2d  %s\n" (i + 1) (Tuning.to_string t))
              tunings)
          (Client.rank c ~benchmark ~top)
      | [ "tune"; benchmark ] ->
        Result.map
          (fun t -> Printf.printf "%s\n" (Tuning.to_string t))
          (Client.tune c ~benchmark)
      | [ "rank!"; benchmark ] ->
        Result.map
          (fun (tunings, approx) ->
            if approx then print_endline "(provisional — reused from a similar instance)";
            List.iteri
              (fun i t -> Printf.printf "%2d  %s\n" (i + 1) (Tuning.to_string t))
              tunings)
          (Client.rank_approx c ~benchmark ~top)
      | [ "tune!"; benchmark ] ->
        Result.map
          (fun (t, approx) ->
            if approx then print_endline "(provisional — reused from a similar instance)";
            Printf.printf "%s\n" (Tuning.to_string t))
          (Client.tune_approx c ~benchmark)
      | [ "info" ] -> Result.map print_kvs (Client.info c)
      | [ "stats" ] ->
        Result.map
          (fun kvs -> print_kvs (List.map (fun (k, v) -> (k, string_of_int v)) kvs))
          (Client.stats c)
      | [ "reload" ] | [ "reload"; _ ] ->
        let model = match words with [ _; m ] -> Some m | _ -> None in
        Result.map
          (fun (name, gen) -> Printf.printf "reloaded %s (generation %d)\n" name gen)
          (Client.reload ?model c)
      | [ "observe"; benchmark; tuning; cost ] -> (
        match Protocol.tuning_of_string tuning with
        | Error m -> Error m
        | Ok tuning -> (
          match float_of_string_opt cost with
          | None -> Error (Printf.sprintf "bad cost %S (expected seconds)" cost)
          | Some cost ->
            Result.map
              (fun total -> Printf.printf "observed (%d records in log)\n" total)
              (Client.observe c ~benchmark ~tuning ~cost)))
      | "observe-batch" :: benchmark :: count :: rest -> (
        let seed = match rest with [] -> Some 5 | [ s ] -> int_of_string_opt s | _ -> None in
        match (int_of_string_opt count, seed) with
        | Some n, Some seed when n >= 1 -> (
          match Benchmarks.instance_by_name benchmark with
          | exception Not_found -> Error (Printf.sprintf "unknown benchmark %S" benchmark)
          | inst ->
            let measure = measure_of ~noise:0.02 ~seed in
            let set = Tuning.predefined_set ~dims:(Kernel.dims (Instance.kernel inst)) in
            let rng = Sorl_util.Rng.create seed in
            let observer = Client.Observer.create c in
            let rec go i =
              if i = n then Client.Observer.close observer
              else begin
                let tuning = set.(Sorl_util.Rng.int rng (Array.length set)) in
                let cost = Sorl_machine.Measure.runtime measure inst tuning in
                match Client.Observer.send observer ~benchmark ~tuning ~cost with
                | Ok () -> go (i + 1)
                | Error _ as e -> e
              end
            in
            Result.map
              (fun () ->
                Printf.printf "streamed %d observations (%d acked, %d rejected)\n" n
                  (Client.Observer.acked observer)
                  (Client.Observer.rejected observer))
              (go 0))
        | _ -> Error "usage: observe-batch BENCHMARK N [SEED]")
      | [ "canary"; model ] ->
        Result.map
          (fun m -> Printf.printf "canary %s loaded (replies stay on the stable model)\n" m)
          (Client.canary c ~model)
      | [ "promote" ] -> (
        match Client.promote c with
        | Ok (m, g) ->
          Printf.printf "promoted %s (generation %d)\n" m g;
          Ok ()
        | Error msg
          when String.length msg >= 15 && String.sub msg 0 15 = "canary-rejected" ->
          (* A rollback is a decision, not a failure: the cycle ran. *)
          Printf.printf "rolled back: %s\n" msg;
          Ok ()
        | Error _ as e -> e)
      | [ "shutdown" ] ->
        Result.map (fun () -> print_endline "server shutting down") (Client.shutdown c)
      | _ ->
        Error
          (Printf.sprintf "bad query %S: expected rank|tune BENCHMARK, observe BENCHMARK \
                           TUNING COST, observe-batch BENCHMARK N [SEED], info, stats, \
                           reload [NAME], canary NAME, promote or shutdown"
             (String.concat " " words))
    in
    Result.map_error (fun m -> `Msg m) result
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Query a running `sorl_tune serve' instance")
    Term.(term_result (const run $ connect_arg $ wait_arg $ top_arg $ words_arg))

(* ---- learn: one observe -> retrain -> publish (-> canary -> promote) cycle ---- *)

let learn_cmd =
  let store_req_arg =
    let doc = "Model store holding the stable model and receiving the new generation." in
    Arg.(required & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)
  in
  let log_arg =
    let doc = "Observation log to replay (default: $(b,--store)/observations.obs)." in
    Arg.(value & opt (some string) None & info [ "log" ] ~docv:"FILE" ~doc)
  in
  let holdout_arg =
    let doc = "Held-out fraction of the log; must match the serving side's split." in
    Arg.(value
         & opt float Sorl_learn.Trainer.default_holdout
         & info [ "holdout" ] ~docv:"F" ~doc)
  in
  let holdout_seed_arg =
    let doc = "Split hash seed; must match the serving side's." in
    Arg.(value
         & opt int Sorl_learn.Trainer.default_seed
         & info [ "holdout-seed" ] ~docv:"SEED" ~doc)
  in
  let solver_arg =
    let doc = "Retraining solver: dcd or sgd." in
    Arg.(value & opt string "dcd" & info [ "solver" ] ~docv:"S" ~doc)
  in
  let scratch_arg =
    let doc = "Train from scratch instead of warm-starting from the stable weights." in
    Arg.(value & flag & info [ "scratch" ] ~doc)
  in
  let compact_arg =
    let doc =
      "Compact the log's sealed segments first: repeated (benchmark, tuning) \
       observations merge into one aggregate (count, mean, min), shrinking the \
       training pair set."
    in
    Arg.(value & flag & info [ "compact" ] ~doc)
  in
  let keep_arg =
    let doc = "Generations of the base to keep after publishing (older ones are pruned)." in
    Arg.(value & opt int 8 & info [ "keep" ] ~docv:"K" ~doc)
  in
  let min_obs_arg =
    let doc = "Refuse to retrain on fewer complete observations than $(docv)." in
    Arg.(value
         & opt int Sorl_learn.Trainer.default_min_observations
         & info [ "min-obs" ] ~docv:"N" ~doc)
  in
  let connect_opt_arg =
    let doc =
      "After publishing, load the generation as a canary on this running server and \
       ask it to promote (a rollback is reported, not an error)."
    in
    Arg.(value & opt (some address_conv) None & info [ "connect"; "c" ] ~docv:"ADDR" ~doc)
  in
  let run store name log holdout holdout_seed solver scratch compact keep min_obs connect =
    let open Sorl_serve in
    let ( let* ) = Result.bind in
    let err fmt = Printf.ksprintf (fun m -> Error (`Msg m)) fmt in
    let of_str r = Result.map_error (fun m -> `Msg m) r in
    let* solver =
      match solver with
      | "dcd" -> Ok (Sorl.Autotuner.Dcd Sorl_svmrank.Solver_dcd.default_params)
      | "sgd" -> Ok (Sorl.Autotuner.Sgd Sorl_svmrank.Solver_sgd.default_params)
      | s -> err "unknown solver %S (expected dcd or sgd)" s
    in
    let* st = of_str (Model_store.open_dir ~create:false store) in
    (* The stable model is the newest published generation, falling
       back to the base entry for the very first cycle. *)
    let stable_name =
      match List.rev (Model_store.list_generations st ~base:name) with
      | latest :: _ -> Model_store.generation_name ~base:name latest
      | [] -> name
    in
    let* stable = of_str (Model_store.load st ~name:stable_name) in
    let mode = Sorl.Autotuner.feature_mode stable in
    let log = Option.value log ~default:(Filename.concat store "observations.obs") in
    let* () =
      if not compact then Ok ()
      else
        let* cs = of_str (Sorl_learn.Obs_log.compact log) in
        Printf.printf "compacted %d segments: %d records -> %d aggregates\n%!"
          cs.Sorl_learn.Obs_log.segments_before cs.Sorl_learn.Obs_log.records_before
          cs.Sorl_learn.Obs_log.records_after;
        Ok ()
    in
    let* obs, clean = of_str (Sorl_learn.Obs_log.replay log) in
    if not clean then
      Printf.printf "note: %s had a torn tail; replayed the complete prefix\n" log;
    let total = List.length obs in
    if total < min_obs then
      err "only %d complete observations in %s (need %d; lower --min-obs to force)" total
        log min_obs
    else begin
      let init = if scratch then None else Some (Sorl.Autotuner.weights stable) in
      let* inc, train_s =
        let r, s =
          Sorl_util.Timer.time (fun () ->
              Sorl_learn.Trainer.retrain_incremental ~solver ?init ~holdout
                ~seed:holdout_seed ~mode log)
        in
        of_str (Result.map (fun c -> (c, s)) r)
      in
      let candidate = inc.Sorl_learn.Trainer.tuner in
      let held = inc.Sorl_learn.Trainer.held in
      let stats = inc.Sorl_learn.Trainer.stats in
      Printf.printf "replayed %d observations from %s (%d train / %d held out)\n%!" total
        log (total - List.length held) (List.length held);
      Printf.printf "encoded %d records, %d from cache; reused %d/%d segments\n%!"
        stats.Sorl_learn.Trainer.records_encoded stats.Sorl_learn.Trainer.records_cached
        stats.Sorl_learn.Trainer.segments_reused stats.Sorl_learn.Trainer.segments_total;
      let tau which tuner =
        match Sorl_learn.Trainer.holdout_tau tuner held with
        | Some tau ->
          Printf.printf "held-out tau (%s): %+.4f\n" which tau;
          Some tau
        | None ->
          Printf.printf "held-out tau (%s): n/a (no benchmark exposes a ranking)\n" which;
          None
      in
      let _ = tau ("stable " ^ stable_name) stable in
      let _ = tau "candidate" candidate in
      Printf.printf "retrained (%s%s) in %s\n" (if scratch then "scratch" else "warm start")
        (match init with Some w -> Printf.sprintf ", %d weights" (Array.length w) | None -> "")
        (Sorl_util.Table.fmt_time train_s);
      let* gname, gen =
        match Model_store.publish st ~base:name candidate with
        | Ok r -> Ok r
        | Error (Model_store.Generation_exists e) ->
          err "generation %s already published (another trainer raced this one?)" e
        | Error (Model_store.Publish_failed m) -> Error (`Msg m)
      in
      Printf.printf "published %s (generation %d of %s)\n%!" gname gen name;
      let* pruned = of_str (Model_store.prune st ~base:name ~keep) in
      if pruned <> [] then
        Printf.printf "pruned %s\n" (String.concat ", " pruned);
      match connect with
      | None -> Ok ()
      | Some address ->
        of_str
          ( Client.with_connection ~retry_for_s:2. address @@ fun c ->
            let* m = Client.canary c ~model:gname in
            Printf.printf "canary %s loaded on %s\n%!" m
              (Protocol.address_to_string address);
            match Client.promote c with
            | Ok (m, g) ->
              Printf.printf "promoted %s (generation %d)\n" m g;
              Ok ()
            | Error msg
              when String.length msg >= 15 && String.sub msg 0 15 = "canary-rejected" ->
              Printf.printf "rolled back: %s\n" msg;
              Ok ()
            | Error _ as e -> e )
    end
  in
  Cmd.v
    (Cmd.info "learn"
       ~doc:
         "Close the loop once: replay an observation log, warm-start a retrain from \
          the stable model, publish the candidate generation, and optionally canary \
          and promote it on a running server")
    Term.(
      term_result
        (const run $ store_req_arg $ name_arg $ log_arg $ holdout_arg $ holdout_seed_arg
        $ solver_arg $ scratch_arg $ compact_arg $ keep_arg $ min_obs_arg
        $ connect_opt_arg))

(* ---- tune-file (DSL front end) ---- *)

let tune_file_cmd =
  let file_arg =
    let doc = "Stencil DSL file (see the Dsl module documentation for the grammar)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let size3_arg =
    let doc = "Grid size as X,Y[,Z]." in
    let size_conv =
      Arg.conv
        ( (fun s ->
            match List.map int_of_string (String.split_on_char ',' s) with
            | [ x; y ] -> Ok (x, y, 1)
            | [ x; y; z ] -> Ok (x, y, z)
            | _ | (exception Failure _) -> Error (`Msg "expected X,Y or X,Y,Z")),
          fun ppf (x, y, z) -> Format.fprintf ppf "%d,%d,%d" x y z )
    in
    Arg.(value & opt size_conv (128, 128, 128) & info [ "grid"; "g" ] ~docv:"SIZE" ~doc)
  in
  let run file (sx, sy, sz) size seed noise verify trace trace_out =
    Result.bind
      (Result.map_error (fun m -> `Msg m) (Dsl.parse_file file))
      (fun kernel ->
        let sz = if Kernel.dims kernel = 2 then 1 else sz in
        match Instance.create_xyz kernel ~sx ~sy ~sz with
        | exception Invalid_argument m -> Error (`Msg m)
        | inst ->
          with_trace trace trace_out @@ fun ~tracing:_ () ->
          Printf.printf "parsed %s from %s\n%!" (Format.asprintf "%a" Kernel.pp kernel) file;
          let measure = measure_of ~noise ~seed in
          let spec = { Sorl.Training.size; mode = Features.Extended; seed } in
          let tuner = Sorl.Autotuner.train ~spec measure in
          let best = Sorl.Autotuner.tune tuner inst in
          Printf.printf "%s: standalone choice %s (%.2f GF/s on the model)\n"
            (Instance.name inst) (Tuning.to_string best)
            (Sorl_machine.Measure.gflops measure inst best);
          if verify > 0 then begin
            let tn, rt = Sorl.Hybrid.rank_then_measure tuner measure inst ~budget:verify in
            Printf.printf "hybrid (verify %d): %s (%.2f GF/s measured)\n" verify
              (Tuning.to_string tn)
              (Instance.total_flops inst /. rt /. 1e9)
          end;
          Ok ())
  in
  Cmd.v
    (Cmd.info "tune-file" ~doc:"Tune a stencil described in the textual DSL")
    Term.(
      term_result
        (const run $ file_arg $ size3_arg $ size_arg $ seed_arg $ noise_arg $ verify_arg
        $ trace_arg $ trace_out_arg))

let main_cmd =
  let doc = "ordinal-regression stencil autotuner (IPDPS'17 reproduction)" in
  Cmd.group (Cmd.info "sorl_tune" ~version:"1.0.0" ~doc)
    [
      list_cmd; train_cmd; rank_cmd; tune_cmd; search_cmd; emit_cmd; inspect_cmd;
      tune_file_cmd; serve_cmd; fleet_cmd; query_cmd; learn_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
