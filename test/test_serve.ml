(* Tests for the serving subsystem: wire protocol round-trips, the
   versioned model store, request coalescing, and the socket server
   end-to-end — served rankings must be bit-identical to in-process
   Autotuner.rank, including under concurrent clients and across a
   mid-load hot reload. *)

open Sorl_stencil
open Sorl_serve

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let machine = Sorl_machine.Machine_desc.xeon_e5_2680_v3
let measure () = Sorl_machine.Measure.model machine

let tiny_instances =
  [
    Instance.create_xyz Benchmarks.edge ~sx:256 ~sy:256 ~sz:1;
    Instance.create_xyz Benchmarks.laplacian ~sx:64 ~sy:64 ~sz:64;
    Instance.create_xyz Benchmarks.gradient ~sx:64 ~sy:64 ~sz:64;
    Instance.create_xyz Benchmarks.blur ~sx:512 ~sy:512 ~sz:1;
  ]

let train seed =
  let spec = { Sorl.Training.size = 200; mode = Features.Extended; seed } in
  Sorl.Autotuner.train_on ~mode:Features.Extended
    (Sorl.Training.generate ~spec ~instances:tiny_instances (measure ()))

let tuner_a = lazy (train 5)
let tuner_b = lazy (train 7)

(* A 2-D Table III benchmark: its predefined set has 1600 candidates,
   keeping the server round-trip tests fast. *)
let benchmark = "blur-1024x768"

let with_temp_dir f =
  let dir = Filename.temp_dir "sorl-serve-test" "" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let get = function Ok x -> x | Error m -> Alcotest.fail m
let get_err what = function Ok _ -> Alcotest.fail (what ^ ": expected Error") | Error m -> m

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ---- protocol ---- *)

let request_roundtrip r = get (Protocol.parse_request (Protocol.encode_request r))

let test_protocol_request_roundtrip () =
  let reqs =
    [
      Protocol.Rank { benchmark = "blur-1024x768"; top = 7; approx_ok = false };
      Protocol.Tune { benchmark = "gradient-256x256x256"; approx_ok = false };
      Protocol.Info;
      Protocol.Stats;
      Protocol.Reload { model = None };
      Protocol.Reload { model = Some "nightly" };
      Protocol.Observe
        {
          benchmark = "blur-1024x768";
          tuning = Tuning.create ~bx:64 ~by:8 ~bz:1 ~u:2 ~c:4;
          cost = 0.012345678901234567;
        };
      Protocol.Canary { model = "default.g3" };
      Protocol.Promote;
      Protocol.Shutdown;
    ]
  in
  List.iter (fun r -> checkb "request roundtrip" true (request_roundtrip r = r)) reqs

let test_protocol_response_roundtrip () =
  let t1 = Tuning.create ~bx:64 ~by:8 ~bz:8 ~u:4 ~c:4 in
  let t2 = Tuning.create ~bx:16 ~by:16 ~bz:1 ~u:0 ~c:1 in
  let resps =
    [
      Protocol.Ranked { benchmark = "b"; total = 1600; tunings = [ t1; t2 ]; approx = false };
      Protocol.Ranked { benchmark = "b"; total = 0; tunings = []; approx = false };
      Protocol.Tuned { benchmark = "b"; tuning = t1; approx = false };
      Protocol.Info_reply [ ("model", "default"); ("generation", "3") ];
      Protocol.Stats_reply [ ("requests", 12); ("errors", 0) ];
      Protocol.Reloaded { model = "nightly"; generation = 4 };
      Protocol.Observed { total = 4096 };
      Protocol.Canaried { model = "default.g3" };
      Protocol.Promoted { model = "default.g3"; generation = 5 };
      Protocol.Bye;
      Protocol.Error { code = Protocol.Busy; message = "queue full, retry later" };
      Protocol.Error { code = Protocol.No_log; message = "no observation log" };
      Protocol.Error { code = Protocol.Canary_rejected; message = "worse tau" };
    ]
  in
  List.iter
    (fun r -> checkb "response roundtrip" true (get (Protocol.parse_response (Protocol.encode_response r)) = r))
    resps;
  (* newlines in error messages must not break the framing *)
  let framed =
    Protocol.encode_response
      (Protocol.Error { code = Protocol.Internal; message = "line1\nline2" })
  in
  checkb "no newline in frame" true (not (String.contains framed '\n'))

let test_protocol_malformed () =
  let bad_requests =
    [
      "";
      "   ";
      "sorl2 info";
      "sorl1";
      "sorl1 frobnicate";
      "sorl1 rank";
      "sorl1 rank blur-1024x768";
      "sorl1 rank blur-1024x768 x";
      "sorl1 rank blur-1024x768 0";
      "sorl1 rank blur-1024x768 -3";
      "sorl1 tune";
      "sorl1 info extra";
      "sorl1 reload a b";
      "rank blur-1024x768 3";
    ]
  in
  List.iter
    (fun line -> ignore (get_err ("request " ^ line) (Protocol.parse_request line)))
    bad_requests;
  let bad_responses =
    [
      "";
      "yo";
      "ok";
      "ok rank b x";
      "ok rank b 3 1,2";
      "ok rank b 3 9999,2,2,0,1";
      "ok tune b 64,8";
      "ok stats k=x";
      "ok reload m x";
      "err whatever boom";
    ]
  in
  List.iter
    (fun line -> ignore (get_err ("response " ^ line) (Protocol.parse_response line)))
    bad_responses;
  (* encode refuses frames that could not be parsed back *)
  Alcotest.check_raises "space in name"
    (Invalid_argument "Protocol: benchmark \"a b\" is not a single printable token")
    (fun () -> ignore (Protocol.encode_request (Protocol.Tune { benchmark = "a b"; approx_ok = false })))

let test_protocol_addresses () =
  checkb "unix roundtrip" true
    (get (Protocol.address_of_string "unix:/tmp/s.sock") = Protocol.Unix_path "/tmp/s.sock");
  checkb "tcp roundtrip" true
    (get (Protocol.address_of_string "tcp:127.0.0.1:7001") = Protocol.Tcp ("127.0.0.1", 7001));
  List.iter
    (fun s -> ignore (get_err s (Protocol.address_of_string s)))
    [ "bogus"; "ftp:x:1"; "unix:"; "tcp:host"; "tcp::99"; "tcp:host:notaport"; "tcp:host:99999" ]

(* ---- defensive model loading ---- *)

let test_load_errors () =
  with_temp_dir @@ fun dir ->
  let path name = Filename.concat dir name in
  let write name contents =
    let oc = open_out_bin (path name) in
    output_string oc contents;
    close_out oc;
    path name
  in
  let msg_of p = get_err p (Sorl.Autotuner.load_result p) in
  let missing = msg_of (path "nope.model") in
  checkb "missing file names the path" true
    (contains ~sub:"nope.model" missing);
  let garbage = msg_of (write "garbage.model" "hello world\n1 2 3\n") in
  checkb "garbage rejected" true (contains ~sub:"not a model file" garbage);
  let v2 = msg_of (write "v2.model" "sorl-model v2\nmode extended\n") in
  checkb "future version rejected" true
    (contains ~sub:"unsupported format version" v2);
  let full = Sorl.Autotuner.to_string (Lazy.force tuner_a) in
  let truncated =
    msg_of (write "trunc.model" (String.sub full 0 (String.length full / 2)))
  in
  checkb "truncated rejected" true (String.length truncated > 0);
  let bad_mode = msg_of (write "mode.model" "sorl-model v1\nmode fancy\n") in
  checkb "unknown mode rejected" true
    (contains ~sub:"unknown feature mode" bad_mode)

(* ---- model store ---- *)

let test_store_roundtrip () =
  with_temp_dir @@ fun dir ->
  let store = get (Model_store.open_dir (Filename.concat dir "store")) in
  let tuner = Lazy.force tuner_a in
  get (Model_store.save store ~name:"default" tuner);
  get (Model_store.save store ~name:"nightly.v2" tuner);
  Alcotest.check (Alcotest.list Alcotest.string) "list" [ "default"; "nightly.v2" ]
    (Model_store.list store);
  let loaded = get (Model_store.load store ~name:"default") in
  let inst = List.nth tiny_instances 1 in
  let t = Tuning.default ~dims:3 in
  Alcotest.check (Alcotest.float 0.) "bit-identical scores"
    (Sorl.Autotuner.score tuner inst t) (Sorl.Autotuner.score loaded inst t)

let test_store_rejects_corruption () =
  with_temp_dir @@ fun dir ->
  let store = get (Model_store.open_dir (Filename.concat dir "store")) in
  get (Model_store.save store ~name:"m" (Lazy.force tuner_a));
  let file = Model_store.path store ~name:"m" in
  (* flip one payload byte; the checksum must catch it *)
  let contents = get (Sorl_util.Persist.read_to_string file) in
  let b = Bytes.of_string contents in
  let i = Bytes.length b - 10 in
  Bytes.set b i (if Bytes.get b i = '1' then '2' else '1');
  let oc = open_out_bin file in
  output_bytes oc b;
  close_out oc;
  let msg = get_err "corrupt" (Model_store.load store ~name:"m") in
  checkb "checksum caught it" true (contains ~sub:"checksum mismatch" msg);
  (* truncation *)
  let oc = open_out_bin file in
  output_string oc (String.sub contents 0 (String.length contents - 40));
  close_out oc;
  let msg = get_err "truncated" (Model_store.load store ~name:"m") in
  checkb "truncation caught" true (contains ~sub:"truncated" msg);
  (* foreign version *)
  let oc = open_out_bin file in
  output_string oc "sorl-store v9\nname m\npayload-bytes 0\nchecksum md5 d41d8cd98f00b204e9800998ecf8427e\n";
  close_out oc;
  let msg = get_err "version" (Model_store.load store ~name:"m") in
  checkb "version rejected" true (contains ~sub:"unsupported store version" msg)

let test_store_names () =
  List.iter
    (fun n -> checkb ("valid " ^ n) true (Model_store.valid_name n))
    [ "default"; "nightly.v2"; "a"; "A-b_c.9" ];
  List.iter
    (fun n -> checkb "invalid" false (Model_store.valid_name n))
    [ ""; ".hidden"; "a/b"; "a b"; String.make 65 'x' ];
  with_temp_dir @@ fun dir ->
  let store = get (Model_store.open_dir (Filename.concat dir "store")) in
  ignore (get_err "bad name" (Model_store.save store ~name:"../evil" (Lazy.force tuner_a)));
  ignore (get_err "missing" (Model_store.load store ~name:"absent"))

(* ---- batcher ---- *)

let test_batcher_coalesces () =
  let tuner = Lazy.force tuner_a in
  let inst = List.nth tiny_instances 3 in
  let rng = Sorl_util.Rng.create 11 in
  let candidates = Array.init 80 (fun _ -> Tuning.random rng ~dims:2) in
  let direct = Sorl.Autotuner.rank tuner inst candidates in
  let b = Batcher.create () in
  let calls_per_domain = 5 and domains = 4 in
  let results = Array.make (domains * calls_per_domain) [||] in
  let spawned =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for j = 0 to calls_per_domain - 1 do
              let r, _follower =
                Batcher.rank b ~generation:0 ~tuner ~inst candidates
              in
              results.((d * calls_per_domain) + j) <- r
            done))
  in
  List.iter Domain.join spawned;
  Array.iter (fun r -> checkb "all identical to direct rank" true (r = direct)) results;
  let s = Batcher.stats b in
  checki "every call accounted for" (domains * calls_per_domain)
    (s.Batcher.leaders + s.Batcher.followers);
  checkb "leaders ran" true (s.Batcher.leaders >= 1);
  checkb "encoder cache reused" true (s.Batcher.encoder_hits >= 1);
  (* a new generation must not share in-flight results across keys *)
  let r1, f1 = Batcher.rank b ~generation:1 ~tuner ~inst candidates in
  checkb "fresh generation ranks fine" true (r1 = direct && not f1)

(* ---- result cache ---- *)

let test_result_cache () =
  let c = Result_cache.create ~capacity:2 () in
  checki "explicit capacity" 2 (Result_cache.capacity c);
  let k g b = Result_cache.key ~generation:g ~verb:"rank:3" ~benchmark:b in
  checkb "initial miss" true (Result_cache.find c (k 0 "a") = None);
  Result_cache.put c (k 0 "a") "reply-a";
  Result_cache.put c (k 0 "b") "reply-b";
  checkb "hit a" true (Result_cache.find c (k 0 "a") = Some "reply-a");
  (* a was just promoted, so inserting c evicts b (the LRU) *)
  Result_cache.put c (k 0 "c") "reply-c";
  checkb "lru evicted" true (Result_cache.find c (k 0 "b") = None);
  checkb "mru survives eviction" true (Result_cache.find c (k 0 "a") = Some "reply-a");
  checki "length pinned at capacity" 2 (Result_cache.length c);
  (* the generation is part of the key: a reload's bump makes every
     stale entry unreachable without any explicit invalidation *)
  checkb "new generation misses" true (Result_cache.find c (k 1 "a") = None);
  checki "hits accounted" 2 (Result_cache.hits c);
  checki "misses accounted" 3 (Result_cache.misses c);
  (* re-putting an existing key keeps the entry (values are
     deterministic per key) and does not grow the cache *)
  Result_cache.put c (k 0 "a") "reply-a";
  checki "duplicate put keeps length" 2 (Result_cache.length c);
  (* capacity 0 disables the cache: nothing stored, nothing counted *)
  let off = Result_cache.create ~capacity:0 () in
  Result_cache.put off "k" "v";
  checkb "disabled find" true (Result_cache.find off "k" = None);
  checki "disabled hits" 0 (Result_cache.hits off);
  checki "disabled misses" 0 (Result_cache.misses off);
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Result_cache.create: capacity must be >= 0") (fun () ->
      ignore (Result_cache.create ~capacity:(-1) ()));
  (* SORL_SERVE_CACHE sizes an unsized create; 0 disables; garbage
     falls back to the default *)
  Unix.putenv "SORL_SERVE_CACHE" "7";
  checki "env capacity" 7 (Result_cache.capacity (Result_cache.create ()));
  Unix.putenv "SORL_SERVE_CACHE" "0";
  checki "env disables" 0 (Result_cache.capacity (Result_cache.create ()));
  Unix.putenv "SORL_SERVE_CACHE" "";
  checki "default capacity" Result_cache.default_capacity
    (Result_cache.capacity (Result_cache.create ()))

(* ---- reactor write path ---- *)

let test_write_all_bounded_by_timeout () =
  (* the satellite fix: a busy/slow peer whose receive buffer is full
     must not wedge the writer — write_all gives up at the deadline *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.set_nonblock a;
      let chunk = Bytes.make 65536 'x' in
      (try
         while true do
           ignore (Unix.write a chunk 0 (Bytes.length chunk))
         done
       with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
      let t0 = Unix.gettimeofday () in
      (match Reactor.write_all ~timeout_s:0.3 a (String.make 4096 'y') with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "expected a timeout writing to a full socket");
      let elapsed = Unix.gettimeofday () -. t0 in
      checkb "waited for the deadline" true (elapsed >= 0.25);
      checkb "returned promptly after it" true (elapsed < 2.))

let test_connect_backoff () =
  with_temp_dir @@ fun dir ->
  let nowhere = Protocol.Unix_path (Filename.concat dir "never-listening.sock") in
  (* no retry window: one attempt, typed Refused *)
  (match Client.connect_result nowhere with
  | Error (Client.Refused _) -> ()
  | Error (Client.Timed_out _) ->
    Alcotest.fail "expected Refused without a retry window"
  | Ok c ->
    Client.close c;
    Alcotest.fail "connected to a never-listening socket");
  (* bounded window: typed Timed_out close to the deadline, with few,
     backed-off attempts — the regression was a 50 ms fixed-interval
     spin that made ~10 attempts in this window *)
  let window = 0.5 in
  let t0 = Unix.gettimeofday () in
  match Client.connect_result ~retry_for_s:window nowhere with
  | Error (Client.Timed_out { elapsed_s; attempts; last }) ->
    let wall = Unix.gettimeofday () -. t0 in
    checkb "gave the endpoint the whole window" true (elapsed_s >= window *. 0.8);
    checkb "returned promptly after the window" true (wall < window +. 1.5);
    checkb "retried at all" true (attempts >= 3);
    checkb "backed off exponentially (few attempts)" true (attempts <= 12);
    checkb "last failure reported" true (String.length last > 0)
  | Error (Client.Refused _) -> Alcotest.fail "expected Timed_out with a retry window"
  | Ok c ->
    Client.close c;
    Alcotest.fail "connected to a never-listening socket"

(* ---- server end-to-end ---- *)

let start_server ?(workers = 2) ?(queue_capacity = 16) ?(conn_timeout_s = 10.)
    ?cache_capacity ?max_connections ?warm ?topk ?neighbors ?neighbor_threshold ?obs_log
    ?canary_fraction dir source =
  let address = Protocol.Unix_path (Filename.concat dir "test.sock") in
  get
    (Server.start ~address ~workers ~queue_capacity ~conn_timeout_s ?cache_capacity
       ?max_connections ?warm ?topk ?neighbors ?neighbor_threshold ?obs_log
       ?canary_fraction source)

(* A raw socket speaking the wire protocol directly — for tests that
   care about exact reply bytes, pipelined trains and connection
   lifecycle, below the Client abstraction. *)
let raw_connect server =
  let path =
    match Server.address server with Protocol.Unix_path p -> p | _ -> assert false
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let raw_close (_, _, oc) = close_out_noerr oc

let file_source dir tuner =
  let path = Filename.concat dir "m.model" in
  Sorl.Autotuner.save tuner path;
  Server.Model_file path

let shutdown_server server =
  get
    (Client.with_connection (Server.address server) (fun c -> Client.shutdown c));
  Server.wait server

let test_server_matches_direct_rank () =
  let tuner = Lazy.force tuner_a in
  let inst = Benchmarks.instance_by_name benchmark in
  let direct =
    Sorl.Autotuner.rank tuner inst
      (Tuning.predefined_set ~dims:(Kernel.dims (Instance.kernel inst)))
  in
  let top = 5 in
  let expected = Array.to_list (Array.sub direct 0 top) in
  List.iter
    (fun workers ->
      with_temp_dir @@ fun dir ->
      let server = start_server ~workers dir (file_source dir tuner) in
      let clients = 4 in
      let answers = Array.make clients [] in
      let spawned =
        List.init clients (fun i ->
            Domain.spawn (fun () ->
                answers.(i) <-
                  get
                    (Client.with_connection (Server.address server) (fun c ->
                         Client.rank c ~benchmark ~top))))
      in
      List.iter Domain.join spawned;
      Array.iter
        (fun a -> checkb "served ranking = in-process ranking" true (a = expected))
        answers;
      (* info reflects the model *)
      let info = get (Client.with_connection (Server.address server) Client.info) in
      checks "generation 0" "0" (List.assoc "generation" info);
      checks "mode" "extended" (List.assoc "mode" info);
      shutdown_server server)
    [ 1; 2; 4 ]

let test_server_tune_info_stats () =
  let tuner = Lazy.force tuner_a in
  with_temp_dir @@ fun dir ->
  let server = start_server dir (file_source dir tuner) in
  let inst = Benchmarks.instance_by_name benchmark in
  let direct_best =
    (Sorl.Autotuner.rank tuner inst
       (Tuning.predefined_set ~dims:(Kernel.dims (Instance.kernel inst)))).(0)
  in
  get
    (Client.with_connection (Server.address server) (fun c ->
         let t = get (Client.tune c ~benchmark) in
         checkb "tune = direct best" true (Tuning.equal t direct_best);
         (* unknown benchmark is a typed error, and the connection
            survives to serve the next request *)
         (match Client.tune c ~benchmark:"no-such-benchmark" with
         | Error m ->
           checkb "no-benchmark error" true
             (contains ~sub:"no-benchmark" m)
         | Ok _ -> Alcotest.fail "expected no-benchmark error");
         let stats = get (Client.stats c) in
         checkb "requests counted" true (List.assoc "requests" stats >= 2);
         checkb "errors counted" true (List.assoc "errors" stats >= 1);
         Ok ()));
  shutdown_server server

let test_server_stats_cold_path_counters () =
  let tuner = Lazy.force tuner_a in
  with_temp_dir @@ fun dir ->
  (* cache off and no warming: every rank takes the cold top-k path,
     so the arena and prune counters must move *)
  let server =
    start_server ~cache_capacity:0 ~warm:false dir (file_source dir tuner)
  in
  get
    (Client.with_connection (Server.address server) (fun c ->
         ignore (get (Client.rank c ~benchmark ~top:3));
         ignore (get (Client.rank c ~benchmark ~top:3));
         let stats = get (Client.stats c) in
         let count key =
           match List.assoc_opt key stats with
           | Some n -> n
           | None -> Alcotest.failf "stats reply is missing %S" key
         in
         checkb "first cold rank allocates a scratch" true (count "arena_misses" >= 1);
         checkb "second cold rank reuses it" true (count "arena_hits" >= 1);
         checkb "top-k path scored candidates" true (count "scored_candidates" > 0);
         checkb "pruning skipped subcubes" true (count "pruned_subcubes" > 0);
         checkb "pruning skipped candidates" true (count "pruned_candidates" > 0);
         Ok ()));
  shutdown_server server

let test_server_rejects_malformed_line () =
  with_temp_dir @@ fun dir ->
  let server = start_server dir (file_source dir (Lazy.force tuner_a)) in
  let path = match Server.address server with Protocol.Unix_path p -> p | _ -> assert false in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
  output_string oc "utter nonsense\n";
  flush oc;
  (match get (Protocol.parse_response (input_line ic)) with
  | Protocol.Error { code = Protocol.Bad_request; _ } -> ()
  | r -> Alcotest.fail ("expected bad-request, got " ^ Protocol.encode_response r));
  (* the connection is still usable after a malformed frame *)
  output_string oc "sorl1 info\n";
  flush oc;
  (match get (Protocol.parse_response (input_line ic)) with
  | Protocol.Info_reply _ -> ()
  | r -> Alcotest.fail ("expected info reply, got " ^ Protocol.encode_response r));
  close_out_noerr oc;
  shutdown_server server

let test_server_cached_replies_byte_identical () =
  let tuner = Lazy.force tuner_a in
  let ask server line =
    let (_, ic, oc) as conn = raw_connect server in
    output_string oc (line ^ "\n");
    flush oc;
    let reply = input_line ic in
    raw_close conn;
    reply
  in
  with_temp_dir @@ fun dir ->
  (* two servers over the same model file: one warmed and cached, one
     with the cache disabled — raw reply bytes must be identical *)
  let cached = start_server dir (file_source dir tuner) in
  let uncached_dir = Filename.concat dir "u" in
  Unix.mkdir uncached_dir 0o755;
  let uncached =
    start_server ~cache_capacity:0 ~warm:false uncached_dir
      (file_source uncached_dir tuner)
  in
  let queries =
    [
      "sorl1 rank " ^ benchmark ^ " 3";
      "sorl1 rank " ^ benchmark ^ " 1";
      "sorl1 tune " ^ benchmark;
      "sorl1 rank gradient-256x256x256 10";
    ]
  in
  List.iter
    (fun q ->
      let hot = ask cached q in
      checks ("cached = uncached for " ^ q) (ask uncached q) hot;
      checks ("cached reply stable for " ^ q) hot (ask cached q))
    queries;
  (* every query above hit the warmed cache; none of them scored *)
  let stats = get (Client.with_connection (Server.address cached) Client.stats) in
  checkb "cache hits recorded" true
    (List.assoc "result_cache_hits" stats >= List.length queries);
  checki "no misses on the warmed set" 0 (List.assoc "result_cache_misses" stats);
  checkb "warming filled entries" true (List.assoc "result_cache_entries" stats > 0);
  let stats_off = get (Client.with_connection (Server.address uncached) Client.stats) in
  checki "disabled cache capacity" 0 (List.assoc "result_cache_capacity" stats_off);
  checki "disabled cache hits" 0 (List.assoc "result_cache_hits" stats_off);
  shutdown_server cached;
  shutdown_server uncached

let test_client_pipeline_in_order () =
  let tuner = Lazy.force tuner_a in
  let inst = Benchmarks.instance_by_name benchmark in
  let direct =
    Sorl.Autotuner.rank tuner inst
      (Tuning.predefined_set ~dims:(Kernel.dims (Instance.kernel inst)))
  in
  let top2 = Array.to_list (Array.sub direct 0 2) in
  with_temp_dir @@ fun dir ->
  let server = start_server dir (file_source dir tuner) in
  get
    (Client.with_connection (Server.address server) (fun c ->
         let reqs =
           [
             Protocol.Info;
             Protocol.Rank { benchmark; top = 2; approx_ok = false };
             Protocol.Tune { benchmark; approx_ok = false };
             Protocol.Rank { benchmark = "no-such-benchmark"; top = 1; approx_ok = false };
             Protocol.Stats;
           ]
         in
         let replies = get (Client.pipeline c reqs) in
         checki "one reply per request" (List.length reqs) (List.length replies);
         (match replies with
         | [
          Protocol.Info_reply _;
          Protocol.Ranked { tunings; _ };
          Protocol.Tuned { tuning; _ };
          Protocol.Error { code = Protocol.No_benchmark; _ };
          Protocol.Stats_reply stats;
         ] ->
           checkb "pipelined rank = direct" true (tunings = top2);
           checkb "pipelined tune = direct best" true (Tuning.equal tuning direct.(0));
           checkb "pipelined requests counted" true
             (List.assoc "pipelined" stats >= List.length reqs)
         | _ -> Alcotest.fail "pipelined replies out of order or mis-shaped");
         Ok ()));
  shutdown_server server

let test_pipeline_malformed_frame_isolated () =
  with_temp_dir @@ fun dir ->
  let server = start_server dir (file_source dir (Lazy.force tuner_a)) in
  let (_, ic, oc) as conn = raw_connect server in
  (* one write carrying a bad frame between two good ones: only the bad
     frame errors, order holds, the connection survives *)
  output_string oc "sorl1 info\nutter garbage\nsorl1 info\n";
  flush oc;
  let expect what ok =
    match get (Protocol.parse_response (input_line ic)) with
    | r when ok r -> ()
    | r -> Alcotest.fail ("expected " ^ what ^ ", got " ^ Protocol.encode_response r)
  in
  expect "info" (function Protocol.Info_reply _ -> true | _ -> false);
  expect "bad-request" (function
    | Protocol.Error { code = Protocol.Bad_request; _ } -> true
    | _ -> false);
  expect "info" (function Protocol.Info_reply _ -> true | _ -> false);
  output_string oc "sorl1 stats\n";
  flush oc;
  expect "stats" (function Protocol.Stats_reply _ -> true | _ -> false);
  raw_close conn;
  shutdown_server server

let test_interleaved_clients_all_progress () =
  (* more concurrent keep-alive clients than worker domains: under the
     reactor an idle connection costs a select slot, not a worker, so
     every client keeps making progress *)
  let tuner = Lazy.force tuner_a in
  with_temp_dir @@ fun dir ->
  let server = start_server ~workers:1 dir (file_source dir tuner) in
  let addr = Server.address server in
  let clients = 6 and rounds = 5 in
  let failures = Atomic.make 0 in
  let spawned =
    List.init clients (fun i ->
        Domain.spawn (fun () ->
            match Client.connect addr with
            | Error _ -> Atomic.incr failures
            | Ok c ->
              for r = 1 to rounds do
                let ok =
                  if (i + r) mod 2 = 0 then Result.is_ok (Client.info c)
                  else Result.is_ok (Client.rank c ~benchmark ~top:1)
                in
                if not ok then Atomic.incr failures
              done;
              Client.close c))
  in
  List.iter Domain.join spawned;
  checki "every interleaved round-trip succeeded" 0 (Atomic.get failures);
  shutdown_server server

let test_server_sheds_excess_connections () =
  with_temp_dir @@ fun dir ->
  let server =
    start_server ~max_connections:1 dir (file_source dir (Lazy.force tuner_a))
  in
  let (_, ic1, oc1) as c1 = raw_connect server in
  output_string oc1 "sorl1 info\n";
  flush oc1;
  (match get (Protocol.parse_response (input_line ic1)) with
  | Protocol.Info_reply _ -> ()
  | r -> Alcotest.fail ("expected info, got " ^ Protocol.encode_response r));
  (* the second concurrent connection is shed at accept: an explicit
     busy reply, then close *)
  let (_, ic2, _) as c2 = raw_connect server in
  (match get (Protocol.parse_response (input_line ic2)) with
  | Protocol.Error { code = Protocol.Busy; _ } -> ()
  | r -> Alcotest.fail ("expected busy, got " ^ Protocol.encode_response r));
  checkb "excess connection closed" true
    (match input_line ic2 with _ -> false | exception End_of_file -> true);
  raw_close c2;
  (* the resident connection is unaffected *)
  output_string oc1 "sorl1 stats\n";
  flush oc1;
  (match get (Protocol.parse_response (input_line ic1)) with
  | Protocol.Stats_reply stats ->
    checkb "shed counted" true (List.assoc "busy_rejections" stats >= 1)
  | r -> Alcotest.fail ("expected stats, got " ^ Protocol.encode_response r));
  raw_close c1;
  (* give the reactor a beat to reap c1 before the shutdown client
     connects, or it too would be shed *)
  Unix.sleepf 0.3;
  shutdown_server server

let test_server_busy_backpressure () =
  with_temp_dir @@ fun dir ->
  (* [topk:false]: this test needs the worker pinned for ~2 s by the
     full-sort scoring pass; the pruned top-k path finishes the train
     before the queue ever fills. *)
  let server =
    start_server ~workers:1 ~queue_capacity:1 ~cache_capacity:0 ~warm:false ~topk:false
      dir
      (file_source dir (Lazy.force tuner_a))
  in
  (* The single uncached worker chews through a long pipelined train
     from c1 (one batch, one worker, ~2 s of scoring on the heaviest
     benchmark); c2's request then sits in the 1-slot queue, and c3's
     must be shed with an explicit busy reply. *)
  let train = 300 and heavy = "gradient-256x256x256" in
  let (_, ic1, oc1) as c1 = raw_connect server in
  for _ = 1 to train do
    output_string oc1 ("sorl1 rank " ^ heavy ^ " 1\n")
  done;
  flush oc1;
  Unix.sleepf 0.3;
  let (_, ic2, oc2) as c2 = raw_connect server in
  output_string oc2 "sorl1 info\n";
  flush oc2;
  Unix.sleepf 0.3;
  let (_, ic3, oc3) as c3 = raw_connect server in
  output_string oc3 "sorl1 info\n";
  flush oc3;
  (match get (Protocol.parse_response (input_line ic3)) with
  | Protocol.Error { code = Protocol.Busy; _ } -> ()
  | r -> Alcotest.fail ("expected busy, got " ^ Protocol.encode_response r));
  checkb "shed connection closed" true
    (match input_line ic3 with _ -> false | exception End_of_file -> true);
  raw_close c3;
  (* the pipelined train is answered in full, in order *)
  for i = 1 to train do
    match get (Protocol.parse_response (input_line ic1)) with
    | Protocol.Ranked _ -> ()
    | r ->
      Alcotest.fail
        (Printf.sprintf "train reply %d: expected rank, got %s" i
           (Protocol.encode_response r))
  done;
  raw_close c1;
  (* the queued request is served once the worker frees up *)
  (match get (Protocol.parse_response (input_line ic2)) with
  | Protocol.Info_reply _ -> ()
  | r -> Alcotest.fail ("expected info, got " ^ Protocol.encode_response r));
  raw_close c2;
  let stats = get (Client.with_connection (Server.address server) Client.stats) in
  checkb "busy rejection counted" true (List.assoc "busy_rejections" stats >= 1);
  checkb "pipelined train counted" true (List.assoc "pipelined" stats >= train);
  shutdown_server server

let test_server_hot_reload_under_load () =
  let a = Lazy.force tuner_a and b = Lazy.force tuner_b in
  let inst = Benchmarks.instance_by_name benchmark in
  let set = Tuning.predefined_set ~dims:(Kernel.dims (Instance.kernel inst)) in
  let top = 3 in
  let top_of tuner = Array.to_list (Array.sub (Sorl.Autotuner.rank tuner inst set) 0 top) in
  let from_a = top_of a and from_b = top_of b in
  with_temp_dir @@ fun dir ->
  let store = get (Model_store.open_dir (Filename.concat dir "store")) in
  get (Model_store.save store ~name:"default" a);
  get (Model_store.save store ~name:"other" b);
  let server = start_server ~workers:2 dir (Server.Store (store, "default")) in
  let addr = Server.address server in
  let rounds = 25 in
  let torn = Atomic.make 0 in
  let clients =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            match Client.connect addr with
            | Error _ -> Atomic.incr torn
            | Ok c ->
              for _ = 1 to rounds do
                match Client.rank c ~benchmark ~top with
                | Ok r when r = from_a || r = from_b -> ()
                | Ok _ | Error _ -> Atomic.incr torn
              done;
              Client.close c))
  in
  (* swap models mid-load *)
  Unix.sleepf 0.05;
  let model, generation =
    get (Client.with_connection addr (fun c -> Client.reload ~model:"other" c))
  in
  checks "reloaded model" "other" model;
  checki "generation bumped" 1 generation;
  List.iter Domain.join clients;
  checki "no torn or failed replies" 0 (Atomic.get torn);
  (* once reload has returned, the retired generation's replies —
     cached or not — must never surface again: every subsequent answer
     comes from model B *)
  get
    (Client.with_connection addr (fun c ->
         for _ = 1 to 8 do
           let r = get (Client.rank c ~benchmark ~top) in
           checkb "serving model B after reload" true (r = from_b)
         done;
         Ok ()));
  shutdown_server server

let test_server_reload_errors_keep_old_model () =
  let a = Lazy.force tuner_a in
  let inst = Benchmarks.instance_by_name benchmark in
  let direct_best =
    (Sorl.Autotuner.rank a inst
       (Tuning.predefined_set ~dims:(Kernel.dims (Instance.kernel inst)))).(0)
  in
  with_temp_dir @@ fun dir ->
  let store = get (Model_store.open_dir (Filename.concat dir "store")) in
  get (Model_store.save store ~name:"default" a);
  let server = start_server dir (Server.Store (store, "default")) in
  let addr = Server.address server in
  (* corrupt the store file under the running server, then ask it to
     reload: the typed store error must come back on the wire and the
     old model must keep serving *)
  let file = Model_store.path store ~name:"default" in
  let oc = open_out_bin file in
  output_string oc "sorl-store v1\nname default\npayload-bytes 3\nchecksum md5 00000000000000000000000000000000\nxyz";
  close_out oc;
  get
    (Client.with_connection addr (fun c ->
         (match Client.reload c with
         | Error m ->
           checkb "store error surfaced" true (contains ~sub:"store" m)
         | Ok _ -> Alcotest.fail "expected reload to fail on a corrupt store");
         let t = get (Client.tune c ~benchmark) in
         checkb "old model still serving" true (Tuning.equal t direct_best);
         let info = get (Client.info c) in
         checks "generation unchanged" "0" (List.assoc "generation" info);
         Ok ()));
  shutdown_server server

(* ---- online learning: observe -> canary -> promote / rollback ---- *)

(* Servers without a log answer the online-learning verbs with typed
   errors instead of half-working. *)
let test_server_without_obs_log () =
  let tuner = Lazy.force tuner_a in
  with_temp_dir @@ fun dir ->
  let server = start_server dir (file_source dir tuner) in
  get
    (Client.with_connection (Server.address server) (fun c ->
         (match
            Client.observe c ~benchmark ~tuning:(Tuning.default ~dims:2) ~cost:0.01
          with
         | Error m -> checkb "observe -> no-log" true (contains ~sub:"no-log" m)
         | Ok _ -> Alcotest.fail "observe accepted without a log");
         (match Client.promote c with
         | Error m ->
           checkb "promote without canary rejected" true
             (contains ~sub:"canary-rejected" m)
         | Ok _ -> Alcotest.fail "promote succeeded without a canary");
         (* a file-backed server has no store to canary from *)
         (match Client.canary c ~model:"x" with
         | Error m -> checkb "canary -> no-model" true (contains ~sub:"no-model" m)
         | Ok _ -> Alcotest.fail "file-backed canary accepted");
         Ok ()));
  shutdown_server server

(* The full closed loop against one server, with concurrent rank load
   throughout: stream observations, retrain a candidate exactly the
   way `sorl_tune learn` does, canary it (replies must stay
   byte-identical to the stable model), promote it (the swap is the
   hot-reload path), then canary a deliberately degraded model and
   watch it roll back and quarantine.  A reply that is not exactly one
   model's bytes is torn; a candidate reply before promote is a
   leak. *)
let test_server_canary_cycle_zero_torn_replies () =
  let stable = Lazy.force tuner_a in
  let inst = Benchmarks.instance_by_name benchmark in
  let set = Tuning.predefined_set ~dims:(Kernel.dims (Instance.kernel inst)) in
  let top = 3 in
  with_temp_dir @@ fun dir ->
  let store = get (Model_store.open_dir (Filename.concat dir "store")) in
  get (Model_store.save store ~name:"default" stable);
  let obs_log = Filename.concat dir "observations.obs" in
  let server = start_server ~workers:2 ~obs_log dir (Server.Store (store, "default")) in
  let addr = Server.address server in
  (* ingest: pipelined observer, every record acked *)
  let measure = Sorl_machine.Measure.model ~noise_amplitude:0.02 ~seed:21 machine in
  let rng = Sorl_util.Rng.create 77 in
  let n_obs = 240 in
  get
    (Client.with_connection addr (fun c ->
         let o = Client.Observer.create ~batch:32 c in
         for _ = 1 to n_obs do
           let tuning = set.(Sorl_util.Rng.int rng (Array.length set)) in
           let cost = Sorl_machine.Measure.runtime measure inst tuning in
           get (Client.Observer.send o ~benchmark ~tuning ~cost)
         done;
         let r = Client.Observer.close o in
         checki "all acked" n_obs (Client.Observer.acked o);
         checki "none rejected" 0 (Client.Observer.rejected o);
         r));
  let obs, clean = get (Sorl_learn.Obs_log.replay obs_log) in
  checkb "server log replays clean" true clean;
  checki "server log complete" n_obs (List.length obs);
  (* retrain: warm start from the stable weights on the train slice *)
  let train_slice, held = Sorl_learn.Trainer.split obs in
  let candidate =
    get
      (Sorl_learn.Trainer.retrain
         ~init:(Sorl.Autotuner.weights stable)
         ~mode:(Sorl.Autotuner.feature_mode stable)
         train_slice)
  in
  let stau = Option.get (Sorl_learn.Trainer.holdout_tau stable held) in
  let ctau = Option.get (Sorl_learn.Trainer.holdout_tau candidate held) in
  checkb (Printf.sprintf "candidate tau %.3f no worse than stable %.3f" ctau stau) true
    (Sorl_learn.Trainer.no_worse ~stable:stau ~candidate:ctau);
  let gname =
    match Model_store.publish store ~base:"default" candidate with
    | Ok (gname, 1) -> gname
    | Ok _ | Error _ -> Alcotest.fail "publish of generation 1 failed"
  in
  let reply_bytes tuner =
    Protocol.encode_response
      (Protocol.Ranked
         {
           benchmark;
           total = Array.length set;
           tunings = Array.to_list (Array.sub (Sorl.Autotuner.rank tuner inst set) 0 top);
           approx = false;
         })
  in
  let stable_bytes = reply_bytes stable and candidate_bytes = reply_bytes candidate in
  (* load: phase 0 = pre-canary, 1 = canary shadowing, 2 = promote
     sent.  Reading the phase after the reply arrives gives a sound
     lower bound — a reply seen while the phase is still <= 1 was
     served strictly before promote. *)
  let phase = Atomic.make 0 in
  let torn = Atomic.make 0 and leaked = Atomic.make 0 in
  let stop = Atomic.make false in
  let request_line = Printf.sprintf "sorl1 rank %s %d" benchmark top in
  let clients =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            let (_, ic, oc) as conn = raw_connect server in
            while not (Atomic.get stop) do
              output_string oc (request_line ^ "\n");
              flush oc;
              let line = input_line ic in
              let p = Atomic.get phase in
              if line <> stable_bytes && line <> candidate_bytes then Atomic.incr torn
              else if p <= 1 && line <> stable_bytes then Atomic.incr leaked
            done;
            raw_close conn))
  in
  let with_client f = get (Client.with_connection addr f) in
  Unix.sleepf 0.05;
  (* canary: replies stay stable while the shadow scores *)
  with_client (fun c -> Client.canary c ~model:gname) |> fun m ->
  checks "canaried" gname m;
  Atomic.set phase 1;
  (* guarantee shadow traffic regardless of load timing *)
  with_client (fun c ->
      for _ = 1 to 5 do
        ignore (get (Client.rank c ~benchmark ~top))
      done;
      Ok ());
  Unix.sleepf 0.1;
  Atomic.set phase 2;
  let promoted_model, generation = with_client Client.promote in
  checks "promoted the canary" gname promoted_model;
  checki "promote is a reload" 1 generation;
  Unix.sleepf 0.05;
  Atomic.set stop true;
  List.iter Domain.join clients;
  checki "zero torn replies" 0 (Atomic.get torn);
  checki "zero candidate replies before promote" 0 (Atomic.get leaked);
  (* post-promote: the candidate serves, and the decision is visible *)
  with_client (fun c ->
      for _ = 1 to 4 do
        let r = get (Client.rank c ~benchmark ~top) in
        checkb "candidate serving after promote" true
          (r = Array.to_list (Array.sub (Sorl.Autotuner.rank candidate inst set) 0 top))
      done;
      let stats = get (Client.stats c) in
      let v k = List.assoc k stats in
      checki "observations counted" n_obs (v "observations");
      checki "log records counted" n_obs (v "obs_log_records");
      checkb "shadow traffic scored" true (v "canary_shadowed" >= 5);
      checki "every shadow is a verdict" (v "canary_shadowed")
        (v "canary_agree" + v "canary_disagree");
      checki "promotion counted" 1 (v "canary_promotions");
      checki "no canary loaded" 0 (v "canary_active");
      checki "stable tau exported (milli)"
        (int_of_float (Float.round (stau *. 1000.)))
        (v "canary_tau_stable_m");
      Ok ());
  (* rollback: a sign-flipped model ranks backwards and must lose *)
  let degraded =
    Sorl.Autotuner.of_model
      ~mode:(Sorl.Autotuner.feature_mode candidate)
      (Sorl_svmrank.Model.create
         (Array.map (fun x -> -.x) (Sorl.Autotuner.weights candidate)))
  in
  get (Model_store.save store ~name:"degraded" degraded);
  with_client (fun c ->
      checks "degraded canaried" "degraded" (get (Client.canary c ~model:"degraded"));
      for _ = 1 to 3 do
        ignore (get (Client.rank c ~benchmark ~top))
      done;
      (match Client.promote c with
      | Error m -> checkb "rolled back" true (contains ~sub:"canary-rejected" m)
      | Ok _ -> Alcotest.fail "degraded model was promoted");
      (* quarantined: the name is refused until a new generation *)
      (match Client.canary c ~model:"degraded" with
      | Error m -> checkb "quarantined" true (contains ~sub:"quarantined" m)
      | Ok _ -> Alcotest.fail "quarantined model re-canaried");
      let stats = get (Client.stats c) in
      checki "rollback counted" 1 (List.assoc "canary_rollbacks" stats);
      checki "quarantine counted" 1 (List.assoc "canary_quarantined" stats);
      let info = get (Client.info c) in
      checks "generation unchanged by rollback" "1" (List.assoc "generation" info);
      (* and the wire keeps serving the promoted candidate *)
      let r = get (Client.rank c ~benchmark ~top) in
      checkb "candidate still serving" true
        (r = Array.to_list (Array.sub (Sorl.Autotuner.rank candidate inst set) 0 top));
      Ok ());
  shutdown_server server

(* ---- near-miss reuse ---- *)

let test_server_provisional_then_exact () =
  (* One worker makes the sequencing deterministic: the back-fill runs
     on the worker strictly after the provisional reply is written and
     before the next batch, so the second identical request must be an
     exact cache hit. *)
  let tuner = Lazy.force tuner_a in
  let near = "blur-1024x1024" in
  (* [benchmark] = blur-1024x768 is its size variant *)
  let exact_of name ~top =
    let inst = Benchmarks.instance_by_name name in
    Array.to_list
      (Array.sub
         (Sorl.Autotuner.rank tuner inst
            (Tuning.predefined_set ~dims:(Kernel.dims (Instance.kernel inst))))
         0 top)
  in
  with_temp_dir @@ fun dir ->
  let server = start_server ~workers:1 ~warm:false dir (file_source dir tuner) in
  get
    (Client.with_connection (Server.address server) (fun c ->
         (* prime: exact rank of the neighbor populates the NN index
            with its top-10 winners *)
         checkb "prime = direct" true
           (get (Client.rank c ~benchmark:near ~top:10) = exact_of near ~top:10);
         (* a cache-missing rank! on the size variant is answered
            provisionally with the neighbor's winners *)
         let tunings, approx = get (Client.rank_approx c ~benchmark ~top:5) in
         checkb "provisional reply flagged" true approx;
         checkb "provisional = neighbor's winners" true (tunings = exact_of near ~top:5);
         (* ... and the back-fill leaves the exact bytes in the cache:
            the same request is now an exact, unflagged hit *)
         let tunings2, approx2 = get (Client.rank_approx c ~benchmark ~top:5) in
         checkb "second ask is exact" true (not approx2);
         checkb "back-filled = direct" true (tunings2 = exact_of benchmark ~top:5);
         (* tune! takes the same provisional-then-exact path *)
         let t1, a1 = get (Client.tune_approx c ~benchmark) in
         checkb "tune! provisional" true a1;
         checkb "provisional best = neighbor's best" true
           (Tuning.equal t1 (List.hd (exact_of near ~top:1)));
         let t2, a2 = get (Client.tune_approx c ~benchmark) in
         checkb "tune! settles exact" true (not a2);
         checkb "exact tune = direct" true
           (Tuning.equal t2 (List.hd (exact_of benchmark ~top:1)));
         (* plain rank never sees an approximation, even on a cold key *)
         checkb "plain rank exact on cold key" true
           (get (Client.rank c ~benchmark ~top:7) = exact_of benchmark ~top:7);
         let stats = get (Client.stats c) in
         checkb "neighbor hits counted" true (List.assoc "neighbor_hits" stats >= 2);
         checkb "approx replies counted" true (List.assoc "approx_replies" stats >= 2);
         checkb "index populated" true (List.assoc "neighbor_entries" stats >= 2);
         Ok ()));
  shutdown_server server

let test_server_neighbor_reconciliation () =
  (* For a pure rank!/tune! load over known benchmarks,
     approx_replies + result_cache_hits + neighbor_misses accounts for
     every request exactly once. *)
  let tuner = Lazy.force tuner_a in
  with_temp_dir @@ fun dir ->
  let server = start_server ~workers:1 ~warm:false dir (file_source dir tuner) in
  let a = "blur-1024x1024" and b = "blur-1024x768" in
  get
    (Client.with_connection (Server.address server) (fun c ->
         let bang_requests =
           [
             Protocol.Rank { benchmark = a; top = 5; approx_ok = true };
             (* cache miss, empty index -> neighbor miss, exact *)
             Protocol.Rank { benchmark = a; top = 5; approx_ok = true };
             (* cache hit *)
             Protocol.Rank { benchmark = b; top = 5; approx_ok = true };
             (* neighbor hit -> approx *)
             Protocol.Rank { benchmark = b; top = 5; approx_ok = true };
             (* back-filled cache hit *)
             Protocol.Tune { benchmark = b; approx_ok = true };
             (* distinct cache key -> neighbor hit again *)
           ]
         in
         List.iter (fun r -> ignore (get (Client.request c r))) bang_requests;
         let stats = get (Client.stats c) in
         let v k = List.assoc k stats in
         checki "approx + cache hits + neighbor misses = bang requests"
           (List.length bang_requests)
           (v "approx_replies" + v "result_cache_hits" + v "neighbor_misses");
         checki "approx replies" 2 (v "approx_replies");
         checki "cache hits" 2 (v "result_cache_hits");
         checki "neighbor misses" 1 (v "neighbor_misses");
         Ok ()));
  shutdown_server server

let test_server_neighbors_disabled_or_far () =
  (* neighbors:0 switches the layer off: rank! behaves exactly like
     rank; and with the layer on, a cross-kernel request never reuses —
     its distance exceeds the threshold. *)
  let tuner = Lazy.force tuner_a in
  with_temp_dir @@ fun dir ->
  let server =
    start_server ~workers:1 ~warm:false ~neighbors:0 dir (file_source dir tuner)
  in
  get
    (Client.with_connection (Server.address server) (fun c ->
         ignore (get (Client.rank c ~benchmark:"blur-1024x1024" ~top:5));
         let _, approx = get (Client.rank_approx c ~benchmark ~top:5) in
         checkb "disabled layer never approximates" true (not approx);
         let stats = get (Client.stats c) in
         checkb "no neighbor stats when disabled" true
           (not (List.mem_assoc "neighbor_hits" stats));
         Ok ()));
  shutdown_server server;
  let server2 = start_server ~workers:1 ~warm:false dir (file_source dir tuner) in
  get
    (Client.with_connection (Server.address server2) (fun c ->
         (* prime with a 3-D kernel, then ask for a 2-D one: far in
            embedding space, so the reply is exact *)
         ignore (get (Client.rank c ~benchmark:"laplacian-128x128x128" ~top:5));
         let _, approx = get (Client.rank_approx c ~benchmark ~top:5) in
         checkb "far instance not reused" true (not approx);
         let stats = get (Client.stats c) in
         checkb "counted as neighbor miss" true (List.assoc "neighbor_misses" stats >= 1);
         Ok ()));
  shutdown_server server2

let test_server_neighbor_reload_invalidates () =
  (* The NN index is keyed to the model generation: after a reload,
     the old generation's winners must never feed a provisional reply. *)
  let a = Lazy.force tuner_a in
  with_temp_dir @@ fun dir ->
  let store = get (Model_store.open_dir (Filename.concat dir "store")) in
  get (Model_store.save store ~name:"default" a);
  get (Model_store.save store ~name:"other" (Lazy.force tuner_b));
  let server =
    start_server ~workers:1 ~warm:false dir (Server.Store (store, "default"))
  in
  get
    (Client.with_connection (Server.address server) (fun c ->
         ignore (get (Client.rank c ~benchmark:"blur-1024x1024" ~top:10));
         let _, approx = get (Client.rank_approx c ~benchmark ~top:5) in
         checkb "neighbor served before reload" true approx;
         ignore (get (Client.reload ~model:"other" c));
         (* the index was dropped with the old generation, so the next
            rank! on a fresh benchmark finds no neighbor *)
         let tunings, approx2 = get (Client.rank_approx c ~benchmark:"edge-512x512" ~top:5) in
         checkb "no stale neighbor after reload" true (not approx2);
         checki "exact reply length" 5 (List.length tunings);
         let stats = get (Client.stats c) in
         checkb "index restarted" true (List.assoc "neighbor_entries" stats <= 2);
         Ok ()));
  shutdown_server server

let test_server_neighbor_concurrent_mixed_load () =
  (* Concurrent clients mixing plain and bang verbs: every reply
     parses, plain replies are never flagged approximate, and every
     rank body - provisional or exact - is a well-formed top-5. *)
  let tuner = Lazy.force tuner_a in
  with_temp_dir @@ fun dir ->
  let server = start_server ~workers:2 ~warm:false dir (file_source dir tuner) in
  let pairs = [| ("blur-1024x1024", "blur-1024x768"); ("edge-512x512", "edge-1024x1024") |] in
  let failures = Atomic.make 0 in
  let spawned =
    List.init 4 (fun i ->
        Domain.spawn (fun () ->
            let prime, variant = pairs.(i mod Array.length pairs) in
            match
              Client.with_connection (Server.address server) (fun c ->
                  for _ = 1 to 5 do
                    (match Client.rank c ~benchmark:prime ~top:5 with
                    | Ok l when List.length l = 5 -> ()
                    | _ -> Atomic.incr failures);
                    match Client.rank_approx c ~benchmark:variant ~top:5 with
                    | Ok (l, _) when List.length l = 5 -> ()
                    | _ -> Atomic.incr failures
                  done;
                  Ok ())
            with
            | Ok () -> ()
            | Error _ -> Atomic.incr failures))
  in
  List.iter Domain.join spawned;
  checki "no torn or malformed replies" 0 (Atomic.get failures);
  shutdown_server server

let suite =
  [
    Alcotest.test_case "protocol request roundtrip" `Quick test_protocol_request_roundtrip;
    Alcotest.test_case "protocol response roundtrip" `Quick test_protocol_response_roundtrip;
    Alcotest.test_case "protocol rejects malformed frames" `Quick test_protocol_malformed;
    Alcotest.test_case "protocol addresses" `Quick test_protocol_addresses;
    Alcotest.test_case "autotuner load is defensive" `Quick test_load_errors;
    Alcotest.test_case "store roundtrip" `Quick test_store_roundtrip;
    Alcotest.test_case "store rejects corruption" `Quick test_store_rejects_corruption;
    Alcotest.test_case "store name validation" `Quick test_store_names;
    Alcotest.test_case "batcher coalesces identical queries" `Quick test_batcher_coalesces;
    Alcotest.test_case "result cache: lru, generations, env, disable" `Quick
      test_result_cache;
    Alcotest.test_case "write_all bounded by timeout" `Quick
      test_write_all_bounded_by_timeout;
    Alcotest.test_case "connect: typed errors, bounded backoff" `Quick
      test_connect_backoff;
    Alcotest.test_case "served ranks = direct ranks (workers 1/2/4)" `Slow
      test_server_matches_direct_rank;
    Alcotest.test_case "tune/info/stats and typed errors" `Quick test_server_tune_info_stats;
    Alcotest.test_case "stats exposes cold-path counters" `Quick
      test_server_stats_cold_path_counters;
    Alcotest.test_case "malformed line gets bad-request" `Quick
      test_server_rejects_malformed_line;
    Alcotest.test_case "cached replies byte-identical to uncached" `Slow
      test_server_cached_replies_byte_identical;
    Alcotest.test_case "pipeline: in-order replies" `Quick test_client_pipeline_in_order;
    Alcotest.test_case "pipeline: malformed frame isolated" `Quick
      test_pipeline_malformed_frame_isolated;
    Alcotest.test_case "interleaved clients > workers all progress" `Quick
      test_interleaved_clients_all_progress;
    Alcotest.test_case "accept shed at max connections" `Quick
      test_server_sheds_excess_connections;
    Alcotest.test_case "busy backpressure" `Slow test_server_busy_backpressure;
    Alcotest.test_case "hot reload under load" `Slow test_server_hot_reload_under_load;
    Alcotest.test_case "failed reload keeps the old model" `Quick
      test_server_reload_errors_keep_old_model;
    Alcotest.test_case "learning verbs without a log are typed errors" `Quick
      test_server_without_obs_log;
    Alcotest.test_case "canary cycle: zero torn replies under load" `Slow
      test_server_canary_cycle_zero_torn_replies;
    Alcotest.test_case "neighbor: provisional then exact back-fill" `Quick
      test_server_provisional_then_exact;
    Alcotest.test_case "neighbor: counters reconcile with requests" `Quick
      test_server_neighbor_reconciliation;
    Alcotest.test_case "neighbor: disabled or out of range" `Quick
      test_server_neighbors_disabled_or_far;
    Alcotest.test_case "neighbor: reload drops the index" `Quick
      test_server_neighbor_reload_invalidates;
    Alcotest.test_case "neighbor: concurrent mixed load" `Slow
      test_server_neighbor_concurrent_mixed_load;
  ]
