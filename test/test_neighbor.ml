(* Tests for the near-miss reuse building blocks: instance embeddings
   must be deterministic and pool-size independent (they key a shared
   index), the NN index must honor its LRU/threshold contract, pruning
   incumbents and search seeds must never change results — only speed —
   and the approx protocol extension must stay byte-compatible with
   pre-extension clients. *)

open Sorl_stencil
module Nn_index = Sorl_util.Nn_index
module Pool = Sorl_util.Pool
module Seeding = Sorl_search.Seeding
module Problem = Sorl_search.Problem
open Sorl_serve

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let get = function Ok x -> x | Error m -> Alcotest.fail m

let get_err what = function
  | Ok _ -> Alcotest.fail (what ^ ": expected Error")
  | Error m -> m

(* ---- instance embeddings ---- *)

let near_pairs =
  (* The pairs the serving layer should treat as neighbors: only
     near-identical encodings transfer their ranking reliably (blur
     size variants; edge and game-of-life share the same 3x3 pattern
     encoding, so reuse between them is exact). *)
  [
    ("blur-1024x1024", "blur-1024x768");
    ("edge-512x512", "game-of-life-512x512");
    ("edge-1024x1024", "game-of-life-1024x1024");
  ]

let dist a b =
  let s = ref 0. in
  Array.iteri (fun i x -> s := !s +. (x *. b.(i))) a;
  1. -. !s

let test_embedding_deterministic () =
  List.iter
    (fun mode ->
      let inst = Benchmarks.instance_by_name "laplacian-128x128x128" in
      let a = Features.embedding mode inst in
      let b = Features.embedding mode inst in
      checki "embedding dim" (Features.dim mode) (Array.length a);
      checkb "bitwise deterministic" true (a = b);
      let n = Array.fold_left (fun s x -> s +. (x *. x)) 0. a in
      checkb "L2-normalized" true (Float.abs (n -. 1.) < 1e-9))
    [ Features.Canonical; Features.Extended ]

let test_embedding_pool_size_independent () =
  let inst2 = Benchmarks.instance_by_name "blur-1024x768" in
  let inst3 = Benchmarks.instance_by_name "gradient-128x128x128" in
  List.iter
    (fun inst ->
      let reference = Features.embedding Features.Extended inst in
      List.iter
        (fun pool ->
          let e =
            Pool.with_domains pool (fun () -> Features.embedding Features.Extended inst)
          in
          checkb
            (Printf.sprintf "pool size %d bit-identical" pool)
            true (e = reference))
        [ 1; 2; 4 ])
    [ inst2; inst3 ]

let test_embedding_separates_neighbors () =
  (* The default threshold must admit the near-identical pairs and
     reject everything else — including same-kernel size variants
     whose measured ranking transfer is poor (see the neighbor-reuse
     bench), and of course cross-kernel pairs. *)
  let e name = Features.embedding Features.Extended (Benchmarks.instance_by_name name) in
  List.iter
    (fun (a, b) ->
      checkb
        (Printf.sprintf "%s ~ %s within threshold" a b)
        true
        (dist (e a) (e b) < Server.default_neighbor_threshold))
    near_pairs;
  List.iter
    (fun (a, b) ->
      checkb
        (Printf.sprintf "%s !~ %s beyond threshold" a b)
        true
        (dist (e a) (e b) > Server.default_neighbor_threshold))
    [
      ("edge-512x512", "edge-1024x1024");
      ("laplacian6-128x128x128", "laplacian6-256x256x256");
      ("wave-128x128x128", "wave-256x256x256");
      ("gradient-128x128x128", "laplacian-128x128x128");
      ("blur-1024x1024", "edge-1024x1024");
    ]

(* ---- the NN index ---- *)

let unit3 = [| 1.; 0.; 0. |]
let mix a b t =
  (* Unit vector interpolated between two orthonormal basis vectors. *)
  let v = [| a *. cos t; b *. sin t; 0. |] in
  v

let test_nn_index_basics () =
  let t = Nn_index.create ~capacity:8 ~dim:3 () in
  checki "dim" 3 (Nn_index.dim t);
  checki "capacity" 8 (Nn_index.capacity t);
  checki "empty" 0 (Nn_index.length t);
  checkb "nearest on empty" true (Nn_index.nearest t unit3 = None);
  Nn_index.add t ~key:"a" unit3 1;
  Nn_index.add t ~key:"b" [| 0.; 1.; 0. |] 2;
  checki "two entries" 2 (Nn_index.length t);
  checkb "find a" true (Nn_index.find t "a" = Some 1);
  checkb "mem b" true (Nn_index.mem t "b");
  checkb "find missing" true (Nn_index.find t "zzz" = None);
  (* replace refreshes, does not evict or grow *)
  Nn_index.add t ~key:"a" unit3 10;
  checki "replace keeps length" 2 (Nn_index.length t);
  checki "replace is not an eviction" 0 (Nn_index.evictions t);
  checkb "replace updates payload" true (Nn_index.find t "a" = Some 10);
  (* nearest: picks the closest entry, reports cosine distance *)
  (match Nn_index.nearest t (mix 1. 1. 0.1) with
  | Some ("a", 10, d) -> checkb "distance in (0, 0.01)" true (d > 0. && d < 0.01)
  | other ->
    Alcotest.fail
      (Printf.sprintf "nearest: expected a, got %s"
         (match other with Some (k, _, _) -> k | None -> "none")));
  (* max_dist turns far matches into misses *)
  checkb "max_dist filters" true
    (Nn_index.nearest ~max_dist:0.001 t (mix 1. 1. 0.3) = None);
  (* exclude skips the self-match and falls through to the runner-up *)
  (match Nn_index.nearest ~exclude:"a" t unit3 with
  | Some ("b", 2, _) -> ()
  | _ -> Alcotest.fail "exclude: expected b");
  Alcotest.check_raises "dim mismatch on add"
    (Invalid_argument "Nn_index.add: vector has 2 dimensions, index wants 3") (fun () ->
      Nn_index.add t ~key:"c" [| 1.; 0. |] 3)

let test_nn_index_lru_eviction () =
  let t = Nn_index.create ~capacity:3 ~dim:3 () in
  let v i = mix 1. 1. (0.05 *. float_of_int i) in
  Nn_index.add t ~key:"a" (v 1) 1;
  Nn_index.add t ~key:"b" (v 2) 2;
  Nn_index.add t ~key:"c" (v 3) 3;
  (* touch a so b is the LRU *)
  ignore (Nn_index.find t "a");
  Nn_index.add t ~key:"d" (v 4) 4;
  checki "capacity held" 3 (Nn_index.length t);
  checki "one eviction" 1 (Nn_index.evictions t);
  checkb "LRU b evicted" true (not (Nn_index.mem t "b"));
  checkb "refreshed a survives" true (Nn_index.mem t "a");
  checkb "keys MRU-first" true (Nn_index.keys t = [ "d"; "a"; "c" ]);
  (* a successful nearest also refreshes: c becomes MRU, a becomes LRU
     after d is touched *)
  (match Nn_index.nearest t (v 3) with
  | Some ("c", 3, _) -> ()
  | _ -> Alcotest.fail "expected c as nearest");
  checkb "nearest refreshes winner" true (List.hd (Nn_index.keys t) = "c");
  (* capacity 0: every operation a no-op/miss *)
  let z = Nn_index.create ~capacity:0 ~dim:3 () in
  Nn_index.add z ~key:"a" unit3 1;
  checki "zero-capacity stays empty" 0 (Nn_index.length z);
  checkb "zero-capacity misses" true (Nn_index.nearest z unit3 = None)

(* ---- incumbent-seeded pruning: identical results ---- *)

let random_tuner seed mode =
  let d = Features.dim mode in
  let rng = Sorl_util.Rng.create seed in
  let w = Array.init d (fun _ -> (Sorl_util.Rng.uniform rng *. 4.) -. 2.) in
  Sorl.Autotuner.of_model ~mode (Sorl_svmrank.Model.create w)

let test_incumbents_do_not_change_results () =
  let tuner = random_tuner 11 Features.Extended in
  List.iter
    (fun (name, neighbor) ->
      let inst = Benchmarks.instance_by_name name in
      let dims = Kernel.dims (Instance.kernel inst) in
      let plain = Sorl.Autotuner.top_k tuner inst ~k:10 in
      (* on-grid incumbents from the neighbor's exact winners *)
      let winners =
        Sorl.Autotuner.top_k tuner (Benchmarks.instance_by_name neighbor) ~k:10
      in
      let seeded = Sorl.Autotuner.top_k ~incumbents:winners tuner inst ~k:10 in
      checkb "incumbents leave top-k unchanged" true (seeded = plain);
      (* off-grid junk incumbents are ignored, never unsound *)
      let junk =
        [| Tuning.create ~bx:7 ~by:13 ~bz:(if dims = 3 then 3 else 1) ~u:5 ~c:17 |]
      in
      let with_junk = Sorl.Autotuner.top_k ~incumbents:junk tuner inst ~k:10 in
      checkb "off-grid incumbents ignored" true (with_junk = plain);
      (* tune with an incumbent = tune without *)
      let best = Sorl.Autotuner.tune tuner inst in
      let seeded_best = Sorl.Autotuner.tune ~incumbent:winners.(0) tuner inst in
      checkb "seeded tune = plain tune" true (Tuning.equal best seeded_best))
    [ ("blur-1024x768", "blur-1024x1024"); ("gradient-128x128x128", "gradient-256x256x256") ]

(* ---- warm-start seeds for the population searches ---- *)

let sphere =
  Problem.create
    ~bounds:[| (2, 1024); (2, 1024); (0, 8) |]
    ~eval:(fun p ->
      let d0 = float_of_int (p.(0) - 300) and d1 = float_of_int (p.(1) - 300) in
      let d2 = float_of_int (p.(2) - 4) in
      (d0 *. d0) +. (d1 *. d1) +. (100. *. d2 *. d2))

let test_seeding_sanitizes () =
  checkb "None -> empty" true (Seeding.usable sphere None = [||]);
  checkb "Some [||] -> empty" true (Seeding.usable sphere (Some [||]) = [||]);
  let out =
    Seeding.usable sphere (Some [| [| 1; 2 |]; [| 5000; 1; -3 |]; [| 300; 300; 4 |] |])
  in
  checki "wrong arity dropped" 2 (Array.length out);
  checkb "clamped into bounds" true (out.(0) = [| 1024; 2; 0 |]);
  checkb "in-bounds untouched" true (out.(1) = [| 300; 300; 4 |]);
  let init = [| [| 9; 9; 9 |]; [| 8; 8; 8 |]; [| 7; 7; 7 |] |] in
  Seeding.overlay [| [| 1; 1; 1 |] |] init;
  checkb "overlay writes leading slots only" true
    (init = [| [| 1; 1; 1 |]; [| 8; 8; 8 |]; [| 7; 7; 7 |] |])

let seeded_runs =
  [
    ("ga", fun ?seeds ~seed p -> Sorl_search.Ga_generational.run ?seeds ~seed ~budget:200 p);
    ("sga", fun ?seeds ~seed p -> Sorl_search.Ga_steady_state.run ?seeds ~seed ~budget:200 p);
    ("es", fun ?seeds ~seed p -> Sorl_search.Evolution_strategy.run ?seeds ~seed ~budget:200 p);
    ("de", fun ?seeds ~seed p -> Sorl_search.Differential_evolution.run ?seeds ~seed ~budget:200 p);
  ]

let test_seeded_searches () =
  let optimum = [| 300; 300; 4 |] in
  seeded_runs
  |> List.iter
       (fun
         ( name,
           (run :
             ?seeds:int array array -> seed:int -> Problem.t -> Sorl_search.Runner.outcome)
         )
       ->
      (* deterministic per seed, with and without warm-start *)
      let a = run ~seed:3 sphere in
      let b = run ~seed:3 sphere in
      checkb (name ^ ": deterministic") true
        (a.Sorl_search.Runner.best_point = b.Sorl_search.Runner.best_point
        && a.best_cost = b.best_cost);
      (* empty seeds = no seeds: same random stream, same outcome *)
      let e = run ?seeds:(Some [||]) ~seed:3 sphere in
      checkb (name ^ ": empty seeds = unseeded") true
        (e.best_point = a.best_point && e.best_cost = a.best_cost);
      let s = run ?seeds:(Some [| optimum |]) ~seed:3 sphere in
      checkb (name ^ ": seeded deterministic") true
        (let s' = run ?seeds:(Some [| optimum |]) ~seed:3 sphere in
         s.best_point = s'.best_point && s.best_cost = s'.best_cost);
      (* seeding with the optimum can only help: the seed is evaluated
         as part of the initial population, so best <= its cost (= 0) *)
      checkb (name ^ ": optimum seed found") true (s.best_cost <= a.best_cost);
      checkb (name ^ ": seed cost attained") true (s.best_cost <= Problem.eval sphere optimum))

let test_registry_accepts_seeds () =
  List.iter
    (fun name ->
      let algo = Sorl_search.Registry.find name in
      let seeded = algo.run ?seeds:(Some [| [| 300; 300; 4 |] |]) ~seed:1 ~budget:120 sphere in
      let plain = algo.run ~seed:1 ~budget:120 sphere in
      (* population algorithms pick the seed up; the others ignore it —
         either way the call is well-typed and deterministic *)
      checkb (name ^ ": seeded cost sane") true
        (seeded.Sorl_search.Runner.best_cost <= plain.best_cost
        || seeded.best_cost = plain.best_cost
        || name = "random" || name = "hill" || name = "sa" || name = "bandit"
        || name = "pso")
      )
    [ "ga"; "de"; "es"; "sga"; "random"; "hill" ]

(* ---- protocol: bang requests, tilde replies, strict mode ---- *)

let test_protocol_approx_roundtrip () =
  let enc = Protocol.encode_request in
  (* byte compatibility: the default encodings are the pre-extension
     frames *)
  checks "rank unchanged" "sorl1 rank blur-1024x768 10"
    (enc (Protocol.Rank { benchmark = "blur-1024x768"; top = 10; approx_ok = false }));
  checks "tune unchanged" "sorl1 tune blur-1024x768"
    (enc (Protocol.Tune { benchmark = "blur-1024x768"; approx_ok = false }));
  checks "rank! opt-in" "sorl1 rank! blur-1024x768 10"
    (enc (Protocol.Rank { benchmark = "blur-1024x768"; top = 10; approx_ok = true }));
  checks "tune! opt-in" "sorl1 tune! blur-1024x768"
    (enc (Protocol.Tune { benchmark = "blur-1024x768"; approx_ok = true }));
  (* request round-trips preserve the flag *)
  List.iter
    (fun r ->
      checkb "request roundtrip" true
        (get (Protocol.parse_request (enc r)) = r))
    [
      Protocol.Rank { benchmark = "b"; top = 3; approx_ok = true };
      Protocol.Rank { benchmark = "b"; top = 3; approx_ok = false };
      Protocol.Tune { benchmark = "b"; approx_ok = true };
      Protocol.Tune { benchmark = "b"; approx_ok = false };
    ];
  (* responses: approx=false encodes the legacy verbs, approx=true the
     tilde forms; both round-trip *)
  let t = Tuning.create ~bx:64 ~by:8 ~bz:1 ~u:2 ~c:16 in
  let ranked approx =
    Protocol.Ranked { benchmark = "b"; total = 1600; tunings = [ t ]; approx }
  in
  let tuned approx = Protocol.Tuned { benchmark = "b"; tuning = t; approx } in
  checkb "ranked exact has no flag" true
    (String.sub (Protocol.encode_response (ranked false)) 0 8 = "ok rank ");
  checkb "ranked approx flagged" true
    (String.sub (Protocol.encode_response (ranked true)) 0 8 = "ok rank~");
  List.iter
    (fun r ->
      checkb "response roundtrip" true
        (get (Protocol.parse_response (Protocol.encode_response r)) = r))
    [ ranked false; ranked true; tuned false; tuned true ]

let test_protocol_strict_vs_lenient () =
  let t = Tuning.create ~bx:64 ~by:8 ~bz:1 ~u:2 ~c:16 in
  let exact =
    Protocol.encode_response
      (Protocol.Tuned { benchmark = "b"; tuning = t; approx = false })
  in
  (* splice an unknown flag onto the reply verb ("ok tune" -> "ok tune?") *)
  let unknown_flag =
    "ok tune?" ^ String.sub exact 7 (String.length exact - 7)
  in
  (match Protocol.parse_response unknown_flag with
  | Ok (Protocol.Tuned { approx = false; _ }) -> ()
  | Ok _ -> Alcotest.fail "lenient: wrong reply shape"
  | Error m -> Alcotest.fail ("lenient parse should skip unknown flags: " ^ m));
  let m = get_err "strict" (Protocol.parse_response ~strict:true unknown_flag) in
  checkb "strict names the flag" true
    (let has sub s =
       let n = String.length sub and l = String.length s in
       let rec go i = i + n <= l && (String.sub s i n = sub || go (i + 1)) in
       go 0
     in
     has "?" m);
  (* unknown base verbs error in both modes *)
  (match Protocol.parse_response "ok zzz 1 2 3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown base verb must error leniently too");
  match Protocol.parse_response ~strict:true "ok zzz 1 2 3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown base verb must error strictly"

(* ---- result cache: evictions and per-generation occupancy ---- *)

let test_result_cache_evictions_and_generations () =
  let c = Result_cache.create ~capacity:3 () in
  let key g b = Result_cache.key ~generation:g ~verb:"rank:3" ~benchmark:b in
  Result_cache.put c (key 0 "a") "ra";
  Result_cache.put c (key 0 "b") "rb";
  Result_cache.put c (key 1 "a") "ra1";
  checki "no evictions yet" 0 (Result_cache.evictions c);
  checkb "by generation" true (Result_cache.entries_by_generation c = [ (0, 2); (1, 1) ]);
  Result_cache.put c (key 1 "b") "rb1";
  checki "one eviction" 1 (Result_cache.evictions c);
  checkb "LRU (gen 0) drained first" true
    (Result_cache.entries_by_generation c = [ (0, 1); (1, 2) ]);
  (* refreshing an existing key is not an eviction *)
  Result_cache.put c (key 1 "b") "rb1";
  checki "refresh is free" 1 (Result_cache.evictions c)

let suite =
  [
    Alcotest.test_case "embedding: deterministic, normalized" `Quick
      test_embedding_deterministic;
    Alcotest.test_case "embedding: pool-size independent (1/2/4)" `Slow
      test_embedding_pool_size_independent;
    Alcotest.test_case "embedding: threshold separates kernels" `Slow
      test_embedding_separates_neighbors;
    Alcotest.test_case "nn index: add/find/nearest/exclude" `Quick test_nn_index_basics;
    Alcotest.test_case "nn index: LRU eviction and refresh" `Quick
      test_nn_index_lru_eviction;
    Alcotest.test_case "incumbents never change rank/tune results" `Slow
      test_incumbents_do_not_change_results;
    Alcotest.test_case "seeding: sanitize and overlay" `Quick test_seeding_sanitizes;
    Alcotest.test_case "seeded searches: deterministic, monotone" `Quick
      test_seeded_searches;
    Alcotest.test_case "registry threads seeds through" `Quick test_registry_accepts_seeds;
    Alcotest.test_case "protocol: approx flags roundtrip, byte-compat" `Quick
      test_protocol_approx_roundtrip;
    Alcotest.test_case "protocol: strict vs lenient flags" `Quick
      test_protocol_strict_vs_lenient;
    Alcotest.test_case "result cache: evictions, per-generation" `Quick
      test_result_cache_evictions_and_generations;
  ]
