(* Tests for Sorl_util.Rank_correlation — the paper's Fig. 6/7 metric. *)

open Sorl_util

let feq = Alcotest.float 1e-9
let checkb = Alcotest.check Alcotest.bool

let test_perfect_agreement () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.check feq "tau = 1" 1. (Rank_correlation.kendall_tau xs xs);
  Alcotest.check feq "rho = 1" 1. (Rank_correlation.spearman_rho xs xs)

let test_perfect_disagreement () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  let ys = [| 5.; 4.; 3.; 2.; 1. |] in
  Alcotest.check feq "tau = -1" (-1.) (Rank_correlation.kendall_tau xs ys);
  Alcotest.check feq "rho = -1" (-1.) (Rank_correlation.spearman_rho xs ys)

let test_one_swap () =
  (* One adjacent swap among 4 items: 1 discordant pair of 6. *)
  let xs = [| 1.; 2.; 3.; 4. |] in
  let ys = [| 1.; 3.; 2.; 4. |] in
  Alcotest.check Alcotest.int "discordant" 1 (Rank_correlation.count_discordant xs ys);
  Alcotest.check feq "tau" (1. -. (2. /. 6.)) (Rank_correlation.kendall_tau xs ys)

let test_monotone_invariance () =
  (* tau depends only on orderings. *)
  let xs = [| 0.1; 0.7; 0.3; 0.9 |] in
  let ys = [| 3.; 1.; 8.; 2. |] in
  let t1 = Rank_correlation.kendall_tau xs ys in
  let t2 = Rank_correlation.kendall_tau (Array.map (fun x -> exp x) xs) ys in
  Alcotest.check feq "monotone transform invariant" t1 t2

let test_ties () =
  let xs = [| 1.; 1.; 2. |] in
  let ys = [| 1.; 2.; 3. |] in
  (* Pairs: (0,1) tied in xs -> skipped; (0,2),(1,2) concordant. *)
  Alcotest.check feq "tau-a with ties" 1. (Rank_correlation.kendall_tau xs ys);
  checkb "tau-b corrects for ties" true (Rank_correlation.kendall_tau_b xs ys < 1.)

let test_tau_b_no_ties_equals_tau_a () =
  let xs = [| 4.; 2.; 9.; 1. |] and ys = [| 1.; 3.; 2.; 4. |] in
  Alcotest.check feq "tau-b = tau-a"
    (Rank_correlation.kendall_tau xs ys)
    (Rank_correlation.kendall_tau_b xs ys)

let test_validation () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Rank_correlation.kendall_tau: length mismatch") (fun () ->
      ignore (Rank_correlation.kendall_tau [| 1.; 2. |] [| 1. |]));
  Alcotest.check_raises "too short"
    (Invalid_argument "Rank_correlation.kendall_tau: need at least 2 points") (fun () ->
      ignore (Rank_correlation.kendall_tau [| 1. |] [| 1. |]))

let test_ranks_midrank () =
  let r = Rank_correlation.ranks [| 10.; 20.; 20.; 30. |] in
  Alcotest.(check (array (float 1e-9))) "midranks" [| 1.; 2.5; 2.5; 4. |] r

let test_spearman_known () =
  (* Classic example: rho of a single swap. *)
  let xs = [| 1.; 2.; 3. |] and ys = [| 1.; 3.; 2. |] in
  Alcotest.check feq "rho" 0.5 (Rank_correlation.spearman_rho xs ys)

let gen_pairs =
  (* An index-proportional jitter makes all values distinct so both
     implementations take their tie-free fast paths. *)
  let distinct a = Array.mapi (fun i v -> v +. (float_of_int i *. 1e-7)) a in
  QCheck2.Gen.(
    let* n = int_range 2 60 in
    let* xs = array_size (return n) (float_range (-1000.) 1000.) in
    let* ys = array_size (return n) (float_range (-1000.) 1000.) in
    return (distinct xs, distinct ys))

let gen_tied_pairs =
  (* Values drawn from a handful of levels, so ties — including joint
     ties — are everywhere. *)
  QCheck2.Gen.(
    let* n = int_range 2 60 in
    let level = map float_of_int (int_range 0 4) in
    let* xs = array_size (return n) level in
    let* ys = array_size (return n) level in
    return (xs, ys))

(* O(n²) reference for tau-b, independent of the library's tie
   machinery. *)
let naive_tau_b xs ys =
  let n = Array.length xs in
  let c = ref 0 and d = ref 0 and tx = ref 0 and ty = ref 0 in
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      let dx = compare xs.(i) xs.(j) and dy = compare ys.(i) ys.(j) in
      if dx = 0 then incr tx;
      if dy = 0 then incr ty;
      if dx <> 0 && dy <> 0 then if dx = dy then incr c else incr d
    done
  done;
  let n0 = n * (n - 1) / 2 in
  let denom = sqrt (float_of_int (n0 - !tx) *. float_of_int (n0 - !ty)) in
  if denom = 0. then 0. else float_of_int (!c - !d) /. denom

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name:"fast tau = naive tau" gen_pairs
         (fun (xs, ys) ->
           Float.abs
             (Rank_correlation.kendall_tau xs ys -. Rank_correlation.kendall_tau_naive xs ys)
           < 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:500 ~name:"fast tau = naive tau (heavy ties)" gen_tied_pairs
         (fun (xs, ys) ->
           Float.abs
             (Rank_correlation.kendall_tau xs ys -. Rank_correlation.kendall_tau_naive xs ys)
           < 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:500 ~name:"tau-b = naive tau-b (heavy ties)" gen_tied_pairs
         (fun (xs, ys) ->
           Float.abs (Rank_correlation.kendall_tau_b xs ys -. naive_tau_b xs ys) < 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name:"tau in [-1,1]" gen_pairs (fun (xs, ys) ->
           let t = Rank_correlation.kendall_tau xs ys in
           t >= -1. && t <= 1.));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name:"tau symmetric" gen_pairs (fun (xs, ys) ->
           Float.abs
             (Rank_correlation.kendall_tau xs ys -. Rank_correlation.kendall_tau ys xs)
           < 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name:"tau(x, -x) = -1" gen_pairs (fun (xs, _) ->
           Float.abs (Rank_correlation.kendall_tau xs (Array.map Float.neg xs) +. 1.) < 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name:"spearman in [-1,1]" gen_pairs (fun (xs, ys) ->
           let r = Rank_correlation.spearman_rho xs ys in
           r >= -1.0000001 && r <= 1.0000001));
  ]

let suite =
  [
    Alcotest.test_case "perfect agreement" `Quick test_perfect_agreement;
    Alcotest.test_case "perfect disagreement" `Quick test_perfect_disagreement;
    Alcotest.test_case "one swap" `Quick test_one_swap;
    Alcotest.test_case "monotone invariance" `Quick test_monotone_invariance;
    Alcotest.test_case "ties" `Quick test_ties;
    Alcotest.test_case "tau-b equals tau-a without ties" `Quick test_tau_b_no_ties_equals_tau_a;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "midranks" `Quick test_ranks_midrank;
    Alcotest.test_case "spearman known value" `Quick test_spearman_known;
  ]
  @ qcheck_tests
