(* Tests for the zero-allocation ranking fast path: compiled encoders
   and CSR batches must be bit-identical to the entry-list paths they
   replace, the measurement memo must be invisible except for the hit
   counter, and the timer must discard its warm-up call. *)

open Sorl_stencil
module Sparse = Sorl_util.Sparse
module Model = Sorl_svmrank.Model
module Measure = Sorl_machine.Measure

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let machine = Sorl_machine.Machine_desc.xeon_e5_2680_v3
let inst3 = Benchmarks.instance_by_name "laplacian-128x128x128"
let inst2 = Benchmarks.instance_by_name "edge-512x512"
let modes = [ Features.Canonical; Features.Extended ]

let gen_tuning3 =
  QCheck2.Gen.(
    let* bx = int_range 2 1024 in
    let* by = int_range 2 1024 in
    let* bz = int_range 2 1024 in
    let* u = int_range 0 8 in
    let* c = int_range 1 256 in
    return (Tuning.create ~bx ~by ~bz ~u ~c))

(* Deterministic dense weights touching every coordinate, so scoring
   parity failures cannot hide behind zero weights. *)
let dummy_model dim =
  Model.create
    (Array.init dim (fun i ->
         if i mod 3 = 0 then 0.25 +. (float_of_int (i mod 7) /. 11.)
         else -0.4 +. (float_of_int (i mod 5) /. 9.)))

let sparse_of_prefix dim idx v n =
  Sparse.of_list ~dim (List.init n (fun k -> (idx.(k), v.(k))))

(* ---- compiled encoder vs the entry-list path ---- *)

let qcheck_encode_into_parity =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"encode_into bit-identical to encode" gen_tuning3
       (fun t ->
         List.for_all
           (fun mode ->
             List.for_all
               (fun inst ->
                 let c = Features.compile mode inst in
                 let idx = Array.make (Features.max_nnz c) 0 in
                 let v = Array.make (Features.max_nnz c) 0. in
                 let n = Features.encode_into c t idx v in
                 let increasing = ref true in
                 for k = 1 to n - 1 do
                   if idx.(k - 1) >= idx.(k) then increasing := false
                 done;
                 !increasing
                 && n <= Features.max_nnz c
                 && Sparse.equal ~eps:0.
                      (sparse_of_prefix (Features.compiled_dim c) idx v n)
                      (Features.encode mode inst t))
               [ inst3; inst2 ])
           modes))

let qcheck_encode_csr_parity =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"encode_csr rows bit-identical to encode"
       QCheck2.Gen.(array_size (return 13) gen_tuning3)
       (fun ts ->
         List.for_all
           (fun mode ->
             let c = Features.compile mode inst3 in
             let csr = Features.encode_csr c ts in
             Sparse.Csr.rows csr = Array.length ts
             && Array.for_all Fun.id
                  (Array.mapi
                     (fun i t ->
                       Sparse.equal ~eps:0. (Sparse.Csr.row csr i)
                         (Features.encode mode inst3 t))
                     ts))
           modes))

(* ---- CSR / slice scoring vs the sparse-vector scorer ---- *)

let qcheck_score_parity =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"score_csr and slice_scorer match score"
       QCheck2.Gen.(array_size (return 11) gen_tuning3)
       (fun ts ->
         List.for_all
           (fun mode ->
             let c = Features.compile mode inst3 in
             let m = dummy_model (Features.compiled_dim c) in
             let csr = Features.encode_csr c ts in
             let batch = Model.score_csr m csr in
             let slice = Model.slice_scorer m in
             let idx = Array.make (Features.max_nnz c) 0 in
             let v = Array.make (Features.max_nnz c) 0. in
             Array.for_all Fun.id
               (Array.mapi
                  (fun i t ->
                    let reference = Model.score m (Features.encode mode inst3 t) in
                    let n = Features.encode_into c t idx v in
                    batch.(i) = reference && slice idx v n = reference)
                  ts))
           modes))

(* ---- ranking fast path vs scoring candidates one by one ---- *)

let trained =
  lazy
    (Sorl.Autotuner.train_on ~mode:Features.Extended
       (Sorl.Training.generate
          ~spec:{ Sorl.Training.size = 96; mode = Features.Extended; seed = 5 }
          ~instances:[ inst3; inst2 ]
          (Measure.model machine)))

let test_rank_matches_seed_path () =
  let tuner = Lazy.force trained in
  let model = Sorl.Autotuner.model tuner in
  let candidates = Tuning.predefined_set ~dims:3 in
  let fast = Sorl.Autotuner.rank tuner inst3 candidates in
  (* Seed path: one sparse encoding and score per candidate, then the
     same score sort.  The streamed compiled path must reproduce it
     bit for bit, tie-breaks included. *)
  let scores =
    Array.map (fun t -> Model.score model (Features.encode Features.Extended inst3 t)) candidates
  in
  let order = Model.sort_by_score scores in
  let seed = Array.map (fun i -> candidates.(i)) order in
  checkb "fast ranking identical to per-candidate path" true (fast = seed)

(* ---- measurement memo ---- *)

let tn i = Tuning.create ~bx:(8 * (i + 1)) ~by:8 ~bz:8 ~u:2 ~c:4

let test_cache_hits_and_identity () =
  let cached = Measure.model machine in
  let uncached = Measure.model ~cache_capacity:0 machine in
  checki "default capacity" 8192 (Measure.cache_capacity cached);
  checki "capacity 0 disables" 0 (Measure.cache_capacity uncached);
  List.iter
    (fun i ->
      let a = Measure.runtime cached inst3 (tn i) in
      let b = Measure.runtime cached inst3 (tn i) in
      let c = Measure.runtime uncached inst3 (tn i) in
      checkb "cache returns the measured value" true (a = b && b = c))
    [ 0; 1; 2 ];
  checki "one hit per re-measurement" 3 (Measure.cache_hits cached);
  checki "disabled cache never hits" 0 (Measure.cache_hits uncached);
  checki "hits still count as evaluations" 6 (Measure.evaluations cached);
  Measure.reset_evaluations cached;
  checki "reset clears hits" 0 (Measure.cache_hits cached);
  (* The cached runtimes survive a counter reset. *)
  ignore (Measure.runtime cached inst3 (tn 0));
  checki "entries survive reset" 1 (Measure.cache_hits cached)

let test_cache_lru_eviction () =
  let m = Measure.model ~cache_capacity:2 machine in
  ignore (Measure.runtime m inst3 (tn 0));
  ignore (Measure.runtime m inst3 (tn 1));
  (* cache (MRU first): [1; 0] *)
  ignore (Measure.runtime m inst3 (tn 0));
  checki "hit refreshes recency" 1 (Measure.cache_hits m);
  (* [0; 1] -> measuring 2 evicts 1 *)
  ignore (Measure.runtime m inst3 (tn 2));
  ignore (Measure.runtime m inst3 (tn 1));
  checki "evicted entry misses" 1 (Measure.cache_hits m);
  (* [1; 2] -> 0 was evicted when 1 came back *)
  ignore (Measure.runtime m inst3 (tn 2));
  checki "resident entry still hits" 2 (Measure.cache_hits m)

let test_cache_env_override () =
  Fun.protect
    ~finally:(fun () -> Unix.putenv "Sorl_MEASURE_CACHE" "")
    (fun () ->
      Unix.putenv "Sorl_MEASURE_CACHE" "5";
      checki "env capacity" 5 (Measure.cache_capacity (Measure.model machine));
      Unix.putenv "Sorl_MEASURE_CACHE" "0";
      let m = Measure.model machine in
      checki "env 0 disables" 0 (Measure.cache_capacity m);
      ignore (Measure.runtime m inst3 (tn 0));
      ignore (Measure.runtime m inst3 (tn 0));
      checki "disabled via env: no hits" 0 (Measure.cache_hits m);
      Unix.putenv "Sorl_MEASURE_CACHE" "not-a-number";
      checki "unparsable env falls back to default" 8192
        (Measure.cache_capacity (Measure.model machine)));
  checki "empty env restores default" 8192 (Measure.cache_capacity (Measure.model machine))

(* ---- timer warm-up ---- *)

let test_timer_warmup_discarded () =
  let calls = ref 0 in
  let _mean, reps = Sorl_util.Timer.time_repeat ~min_time:0. (fun () -> incr calls) in
  checkb "reps positive" true (reps >= 1);
  checki "one extra untimed warm-up call" (reps + 1) !calls

let suite =
  [
    qcheck_encode_into_parity;
    qcheck_encode_csr_parity;
    qcheck_score_parity;
    Alcotest.test_case "rank matches seed path" `Quick test_rank_matches_seed_path;
    Alcotest.test_case "measure cache hits and identity" `Quick test_cache_hits_and_identity;
    Alcotest.test_case "measure cache LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "measure cache env override" `Quick test_cache_env_override;
    Alcotest.test_case "timer discards warm-up" `Quick test_timer_warmup_discarded;
  ]
