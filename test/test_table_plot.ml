(* Tests for the text rendering helpers (Table, Ascii_plot, Timer). *)

open Sorl_util

let checkb = Alcotest.check Alcotest.bool
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_table_render () =
  let t = Table.create ~aligns:[ Table.Left; Table.Right ] [ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_rule t;
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  checkb "has header" true (contains s "name");
  checkb "has cells" true (contains s "alpha" && contains s "22");
  checkb "right aligned" true (contains s "    1 |")

let test_table_arity_checks () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "row arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only-one" ]);
  Alcotest.check_raises "aligns arity" (Invalid_argument "Table.create: aligns arity mismatch")
    (fun () -> ignore (Table.create ~aligns:[ Table.Left ] [ "a"; "b" ]))

let test_fmt_time () =
  checkb "us" true (contains (Table.fmt_time 5e-5) "us");
  checkb "ms" true (contains (Table.fmt_time 0.005) "ms");
  checkb "s" true (contains (Table.fmt_time 2.5) "s");
  Alcotest.check Alcotest.string "minutes" "4m12s" (Table.fmt_time 252.)

let test_bar_chart () =
  let s = Ascii_plot.bar_chart ~title:"t" [ ("a", 2.); ("bb", 1.) ] in
  checkb "labels present" true (contains s "a" && contains s "bb");
  checkb "bars scale" true (contains s "##")

let test_grouped_bars () =
  let s =
    Ascii_plot.grouped_bars ~title:"g" ~series:[ "s1"; "s2" ]
      [ ("g1", [| 1.; 2. |]); ("g2", [| 0.5; 0.1 |]) ]
  in
  checkb "legend" true (contains s "legend");
  checkb "groups" true (contains s "g1" && contains s "g2")

let test_line_chart () =
  let s =
    Ascii_plot.line_chart ~title:"conv" ~x_label:"evals" ~y_label:"gflops"
      [ ("ga", [| (1., 1.); (2., 3.) |]); ("de", [| (1., 2.); (2., 2.5) |]) ]
  in
  checkb "title" true (contains s "conv");
  checkb "series names" true (contains s "ga" && contains s "de");
  checkb "axis span" true (contains s "evals")

let test_line_chart_empty () =
  let s = Ascii_plot.line_chart ~title:"e" ~x_label:"x" ~y_label:"y" [ ("none", [||]) ] in
  checkb "handles empty" true (contains s "no data")

let test_box_plots () =
  let b = Stats.box_plot [| 1.; 2.; 3.; 4.; 100. |] in
  let s = Ascii_plot.box_plots ~title:"taus" [ ("s1", b) ] in
  checkb "median marker" true (contains s "M");
  checkb "outlier marker" true (contains s "o");
  checkb "label" true (contains s "s1")

let test_timer () =
  let r, dt = Timer.time (fun () -> 42) in
  Alcotest.check Alcotest.int "result" 42 r;
  checkb "time nonnegative" true (dt >= 0.);
  let per, reps = Timer.time_repeat ~min_time:0.001 (fun () -> ignore (Sys.opaque_identity (1 + 1))) in
  checkb "repeat positive" true (per > 0.);
  checkb "repeat count" true (reps >= 1)

let suite =
  [
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table arity" `Quick test_table_arity_checks;
    Alcotest.test_case "fmt_time" `Quick test_fmt_time;
    Alcotest.test_case "bar chart" `Quick test_bar_chart;
    Alcotest.test_case "grouped bars" `Quick test_grouped_bars;
    Alcotest.test_case "line chart" `Quick test_line_chart;
    Alcotest.test_case "line chart empty" `Quick test_line_chart_empty;
    Alcotest.test_case "box plots" `Quick test_box_plots;
    Alcotest.test_case "timer" `Quick test_timer;
  ]
