(* Parity suite for the cold-path ranking fast paths: bounded top-k
   selection must equal the first k elements of the full sort, and
   branch-and-bound pruning over the predefined grid must reproduce the
   exhaustive rank exactly — for adversarial (random) weight vectors,
   across feature modes and pool sizes.  Random weights are the hard
   case for bound soundness: unlike trained models they put large
   positive and negative mass on every bin, so any unsound endpoint
   choice in the bounder shows up as a pruned cube that held a true
   top-k candidate. *)

open Sorl_stencil
module Model = Sorl_svmrank.Model
module Topk = Sorl_util.Topk

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* ---- Model.top_k == prefix of sort_by_score ---- *)

(* Scores drawn from a small value set force duplicate scores, so the
   index tiebreak path is exercised constantly, not occasionally. *)
let gen_scores =
  QCheck2.Gen.(
    array_size (int_range 0 400)
      (oneof [ float_range (-2.) 2.; map (fun i -> float_of_int i /. 4.) (int_range (-8) 8) ]))

let gen_scores_k = QCheck2.Gen.(pair gen_scores (int_range 0 500))

let topk_matches_sort (scores, k) =
  let expected = Array.sub (Model.sort_by_score scores) 0 (min k (Array.length scores)) in
  Model.top_k ~k scores = expected

let topk_default_is_full_sort scores = Model.top_k scores = Model.sort_by_score scores

(* ---- deterministic edge cases ---- *)

let test_topk_edges () =
  checkb "k = 0" true (Model.top_k ~k:0 [| 3.; 1.; 2. |] = [||]);
  checkb "k = 0 on empty" true (Model.top_k ~k:0 [||] = [||]);
  checkb "k > n" true (Model.top_k ~k:10 [| 3.; 1.; 2. |] = [| 1; 2; 0 |]);
  checkb "all ties -> index order" true (Model.top_k ~k:3 (Array.make 8 1.) = [| 0; 1; 2 |]);
  checkb "-0. ties 0." true (Model.top_k ~k:2 [| 0.; -0.; 1. |] = [| 0; 1 |]);
  Alcotest.check_raises "negative k" (Invalid_argument "Model.top_k: negative k") (fun () ->
      ignore (Model.top_k ~k:(-1) [| 1. |]))

let test_topk_selector_reuse () =
  (* One selector, reset between uses at different capacities, gives
     the same answers as fresh ones — the arena reuse contract. *)
  let h = Topk.create ~k:2 in
  let run scores k =
    Topk.reset h ~k;
    Array.iteri (fun i s -> Topk.push h s i) scores;
    Topk.contents h
  in
  let a = [| 5.; 1.; 4.; 1.; 3. |] in
  checkb "first use" true (run a 3 = [| 1; 3; 4 |]);
  checkb "bigger k grows" true (run a 5 = [| 1; 3; 4; 2; 0 |]);
  checkb "smaller k after grow" true (run a 1 = [| 1 |]);
  checki "consumed" 0 (Topk.size h)

(* ---- pruned top-k == exhaustive rank prefix ---- *)

let instances =
  [
    Instance.create_xyz Benchmarks.gradient ~sx:256 ~sy:256 ~sz:256;
    Instance.create_xyz Benchmarks.blur ~sx:1024 ~sy:768 ~sz:1;
    Instance.create_xyz Benchmarks.laplacian ~sx:64 ~sy:512 ~sz:32;
  ]

let random_tuner rng mode =
  let d = Features.dim mode in
  (* Heavy-tailed weights in [-2, 2]: sign changes across every bin
     group, the adversarial case for the bounder. *)
  let w = Array.init d (fun _ -> (Sorl_util.Rng.uniform rng *. 4.) -. 2.) in
  Sorl.Autotuner.of_model ~mode (Model.create w)

let pruned_equals_exhaustive ?scratch tuner inst ~k =
  let dims = Kernel.dims (Instance.kernel inst) in
  let full = Sorl.Autotuner.rank tuner inst (Tuning.predefined_set ~dims) in
  let enc = Features.compile (Sorl.Autotuner.feature_mode tuner) inst in
  let got, stats = Sorl.Autotuner.top_k_pruned ?scratch tuner enc ~dims ~k in
  let expected = Array.sub full 0 (min k (Array.length full)) in
  if got <> expected then
    Alcotest.failf "pruned top-%d diverges on %s: got %s, want %s" k (Instance.name inst)
      (String.concat ";" (Array.to_list (Array.map Tuning.to_string got)))
      (String.concat ";" (Array.to_list (Array.map Tuning.to_string expected)));
  stats

let test_pruned_parity_random_models () =
  let rng = Sorl_util.Rng.create 77 in
  let scratch = Sorl.Autotuner.scratch () in
  (* 6 random extended models x 3 instances x k in {1, 3, 10}; the
     shared scratch also proves reuse across models and instances. *)
  for _ = 1 to 6 do
    let tuner = random_tuner rng Features.Extended in
    List.iter
      (fun inst ->
        List.iter (fun k -> ignore (pruned_equals_exhaustive ~scratch tuner inst ~k)) [ 1; 3; 10 ])
      instances
  done

let test_pruned_parity_canonical () =
  let rng = Sorl_util.Rng.create 78 in
  for _ = 1 to 3 do
    let tuner = random_tuner rng Features.Canonical in
    List.iter (fun inst -> ignore (pruned_equals_exhaustive tuner inst ~k:5)) instances
  done

let test_pruned_parity_across_pool_sizes () =
  (* The exhaustive side chunks over the pool; the pruned side is
     serial.  Equality at pool sizes 1/2/4 pins both that ranking is
     pool-size-invariant and that pruning matches it everywhere. *)
  let rng = Sorl_util.Rng.create 79 in
  let tuner = random_tuner rng Features.Extended in
  List.iter
    (fun d ->
      Sorl_util.Pool.with_domains d (fun () ->
          List.iter (fun inst -> ignore (pruned_equals_exhaustive tuner inst ~k:3)) instances))
    [ 1; 2; 4 ]

let test_pruned_stats_accounting () =
  let rng = Sorl_util.Rng.create 80 in
  let tuner = random_tuner rng Features.Extended in
  let inst = List.hd instances in
  let dims = Kernel.dims (Instance.kernel inst) in
  let enc = Features.compile Features.Extended inst in
  let _, s = Sorl.Autotuner.top_k_pruned tuner enc ~dims ~k:1 in
  let total = Tuning.predefined_size ~dims in
  checki "cubes x cube size = set size" total
    ((s.Sorl.Autotuner.scored + s.Sorl.Autotuner.pruned) * 1);
  checkb "scored + pruned partition the set" true (s.Sorl.Autotuner.scored + s.Sorl.Autotuner.pruned = total);
  checkb "cube accounting" true
    (s.Sorl.Autotuner.cubes_pruned <= s.Sorl.Autotuner.cubes && s.Sorl.Autotuner.scored >= 1)

let test_tune_equals_full_rank_head () =
  let rng = Sorl_util.Rng.create 81 in
  let tuner = random_tuner rng Features.Extended in
  List.iter
    (fun inst ->
      let dims = Kernel.dims (Instance.kernel inst) in
      let full = Sorl.Autotuner.rank tuner inst (Tuning.predefined_set ~dims) in
      checkb "tune = rank head" true (Tuning.equal (Sorl.Autotuner.tune tuner inst) full.(0));
      checkb "best = rank head" true
        (Tuning.equal (Sorl.Autotuner.best tuner inst (Tuning.predefined_set ~dims)) full.(0)))
    instances

let test_predefined_axes_consistent () =
  List.iter
    (fun dims ->
      let set = Tuning.predefined_set ~dims in
      checki "size matches set" (Array.length set) (Tuning.predefined_size ~dims);
      let a = Tuning.predefined_axes ~dims in
      let nby = Array.length a.Tuning.ax_by
      and nbz = Array.length a.Tuning.ax_bz
      and nu = Array.length a.Tuning.ax_u
      and nc = Array.length a.Tuning.ax_c in
      (* Flat-index correspondence: the documented row-major formula
         recovers every element — the invariant pruning's tiebreak
         order rests on. *)
      Array.iteri
        (fun i t ->
          let ic = i mod nc in
          let i = i / nc in
          let iu = i mod nu in
          let i = i / nu in
          let ibz = i mod nbz in
          let i = i / nbz in
          let iby = i mod nby in
          let ibx = i / nby in
          checkb "flat index decodes" true
            (Tuning.equal t
               {
                 Tuning.bx = a.Tuning.ax_bx.(ibx);
                 by = a.Tuning.ax_by.(iby);
                 bz = a.Tuning.ax_bz.(ibz);
                 u = a.Tuning.ax_u.(iu);
                 c = a.Tuning.ax_c.(ic);
               }))
        set)
    [ 2; 3 ]

let suite =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:500 ~name:"top_k = sort prefix (dup-heavy scores)" gen_scores_k
         topk_matches_sort);
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:200 ~name:"top_k default = full sort" gen_scores
         topk_default_is_full_sort);
    Alcotest.test_case "top_k edge cases" `Quick test_topk_edges;
    Alcotest.test_case "selector reset/reuse" `Quick test_topk_selector_reuse;
    Alcotest.test_case "pruned = exhaustive (random extended models)" `Slow
      test_pruned_parity_random_models;
    Alcotest.test_case "pruned = exhaustive (canonical mode)" `Quick test_pruned_parity_canonical;
    Alcotest.test_case "pruned = exhaustive across pool sizes 1/2/4" `Slow
      test_pruned_parity_across_pool_sizes;
    Alcotest.test_case "prune stats partition the set" `Quick test_pruned_stats_accounting;
    Alcotest.test_case "tune/best = full rank head" `Quick test_tune_equals_full_rank_head;
    Alcotest.test_case "predefined axes <-> set correspondence" `Quick
      test_predefined_axes_consistent;
  ]
