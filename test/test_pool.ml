(* Tests for the Sorl_util.Pool multicore engine and the parallel ==
   serial guarantees of the library paths built on it. *)

open Sorl_stencil
module Pool = Sorl_util.Pool

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let pool_sizes = [ 1; 2; 4 ]

(* ---- Pool primitives ---- *)

let test_parallel_map_matches_serial () =
  let input = Array.init 1000 (fun i -> i) in
  let f i = (i * i) + 7 in
  let expected = Array.map f input in
  List.iter
    (fun d ->
      Alcotest.(check (array int))
        (Printf.sprintf "map identical at %d domains" d)
        expected
        (Pool.with_domains d (fun () -> Pool.parallel_map f input)))
    pool_sizes;
  Alcotest.(check (array int)) "explicit ?domains" expected (Pool.parallel_map ~domains:3 f input);
  Alcotest.(check (array int)) "empty input" [||] (Pool.parallel_map ~domains:4 f [||])

let test_parallel_for_covers_all_indices () =
  List.iter
    (fun d ->
      let n = 257 in
      let hits = Array.make n 0 in
      (* Disjoint chunks: each index is written exactly once. *)
      Pool.with_domains d (fun () -> Pool.parallel_for n (fun i -> hits.(i) <- hits.(i) + 1));
      checkb (Printf.sprintf "every index once at %d domains" d) true
        (Array.for_all (fun c -> c = 1) hits))
    pool_sizes

let test_parallel_reduce () =
  let a = Array.init 500 (fun i -> i) in
  let expected = Array.fold_left ( + ) 0 a in
  List.iter
    (fun d ->
      checki
        (Printf.sprintf "sum at %d domains" d)
        expected
        (Pool.with_domains d (fun () ->
             Pool.parallel_reduce ~map:Fun.id ~combine:( + ) ~init:0 a)))
    pool_sizes

let test_parallel_map_list () =
  let l = List.init 37 (fun i -> i) in
  Alcotest.(check (list int))
    "list map" (List.map succ l)
    (Pool.with_domains 4 (fun () -> Pool.parallel_map_list succ l))

let test_exception_propagation () =
  List.iter
    (fun d ->
      Alcotest.check_raises
        (Printf.sprintf "exception surfaces at %d domains" d)
        (Failure "boom") (fun () ->
          Pool.with_domains d (fun () ->
              Pool.parallel_for 100 (fun i -> if i = 73 then failwith "boom"))))
    pool_sizes

let test_nested_use () =
  (* Parallel code calling parallel code must still produce correct,
     complete results (the inner level degrades to serial). *)
  let outer = Array.init 8 (fun i -> i) in
  let f i =
    Array.fold_left ( + ) 0 (Pool.parallel_map (fun j -> (i * 100) + j) (Array.init 50 Fun.id))
  in
  let expected = Array.map f outer in
  Alcotest.(check (array int))
    "nested map correct" expected
    (Pool.with_domains 4 (fun () -> Pool.parallel_map f outer))

let test_with_domains_restores () =
  let before = Pool.default_domains () in
  Pool.with_domains 3 (fun () -> checki "inside" 3 (Pool.default_domains ()));
  checki "restored" before (Pool.default_domains ());
  (try Pool.with_domains 2 (fun () -> failwith "x") with Failure _ -> ());
  checki "restored after exception" before (Pool.default_domains ());
  Alcotest.check_raises "size >= 1" (Invalid_argument "Pool.with_domains: size must be >= 1")
    (fun () -> Pool.with_domains 0 Fun.id)

(* ---- Parallel == serial for the library paths ---- *)

let machine = Sorl_machine.Machine_desc.xeon_e5_2680_v3
let measure () = Sorl_machine.Measure.model machine

let tiny_instances =
  [
    Instance.create_xyz Benchmarks.edge ~sx:256 ~sy:256 ~sz:1;
    Instance.create_xyz Benchmarks.laplacian ~sx:64 ~sy:64 ~sz:64;
    Instance.create_xyz Benchmarks.gradient ~sx:64 ~sy:64 ~sz:64;
    Instance.create_xyz Benchmarks.blur ~sx:512 ~sy:512 ~sz:1;
  ]

let tiny_spec size = { Sorl.Training.size; mode = Features.Extended; seed = 5 }

let datasets_identical a b =
  let sa = Sorl_svmrank.Dataset.samples a and sb = Sorl_svmrank.Dataset.samples b in
  Array.length sa = Array.length sb
  && Array.for_all2
       (fun x y ->
         x.Sorl_svmrank.Dataset.query = y.Sorl_svmrank.Dataset.query
         && x.Sorl_svmrank.Dataset.runtime = y.Sorl_svmrank.Dataset.runtime
         && x.Sorl_svmrank.Dataset.tag = y.Sorl_svmrank.Dataset.tag
         && Sorl_util.Sparse.equal ~eps:0. x.Sorl_svmrank.Dataset.features
              y.Sorl_svmrank.Dataset.features)
       sa sb

let test_training_generate_parity () =
  let at d =
    Pool.with_domains d (fun () ->
        Sorl.Training.generate ~spec:(tiny_spec 64) ~instances:tiny_instances (measure ()))
  in
  let serial = at 1 in
  List.iter
    (fun d ->
      checkb
        (Printf.sprintf "dataset identical at %d domains" d)
        true
        (datasets_identical serial (at d)))
    [ 2; 4 ]

let test_training_generate_counts_evaluations () =
  let ms = measure () in
  let ds =
    Pool.with_domains 4 (fun () ->
        Sorl.Training.generate ~spec:(tiny_spec 64) ~instances:tiny_instances ms)
  in
  checki "samples" 64 (Sorl_svmrank.Dataset.num_samples ds);
  checki "atomic evaluation count" 64 (Sorl_machine.Measure.evaluations ms)

let trained =
  lazy
    (let ds = Sorl.Training.generate ~spec:(tiny_spec 96) ~instances:tiny_instances (measure ()) in
     Sorl.Autotuner.train_on ~mode:Features.Extended ds)

let test_rank_parity () =
  let tuner = Lazy.force trained in
  let inst = List.nth tiny_instances 1 in
  let candidates = Tuning.predefined_set ~dims:3 in
  let at d = Pool.with_domains d (fun () -> Sorl.Autotuner.rank tuner inst candidates) in
  let serial = at 1 in
  List.iter
    (fun d -> checkb (Printf.sprintf "ranking identical at %d domains" d) true (serial = at d))
    [ 2; 4 ];
  (* The chunked entry scorer must agree exactly with the one-candidate
     scoring path the ranking claims to sort by. *)
  let scores = Array.map (Sorl.Autotuner.score tuner inst) serial in
  let sorted = Array.copy scores in
  Array.sort compare sorted;
  checkb "rank order sorts Autotuner.score exactly" true (scores = sorted)

let test_taus_parity () =
  let tuner = Lazy.force trained in
  let at d =
    Pool.with_domains d (fun () ->
        Sorl.Experiments.test_set_taus ~samples_per_instance:16 (measure ()) tuner tiny_instances)
  in
  let serial = at 1 in
  List.iter
    (fun d ->
      checkb (Printf.sprintf "held-out taus identical at %d domains" d) true (serial = at d))
    [ 2; 4 ]

let test_eval_taus_parity () =
  let ds = Sorl.Training.generate ~spec:(tiny_spec 64) ~instances:tiny_instances (measure ()) in
  let tuner = Sorl.Autotuner.train_on ~mode:Features.Extended ds in
  let at d =
    Pool.with_domains d (fun () -> Sorl_svmrank.Eval.taus (Sorl.Autotuner.model tuner) ds)
  in
  let serial = at 1 in
  List.iter
    (fun d ->
      checkb (Printf.sprintf "per-query taus identical at %d domains" d) true (serial = at d))
    [ 2; 4 ]

let test_search_parity () =
  (* Batched generations must reproduce the serial search bit for bit:
     same best point, cost, curve and accounted total cost. *)
  let inst = List.nth tiny_instances 2 in
  let problem = Sorl.Tuning_problem.problem (measure ()) inst in
  List.iter
    (fun algo ->
      let at d =
        Pool.with_domains d (fun () -> algo.Sorl_search.Registry.run ~seed:17 ~budget:96 problem)
      in
      let serial = at 1 in
      List.iter
        (fun d ->
          let o = at d in
          checkb
            (Printf.sprintf "%s outcome identical at %d domains" algo.Sorl_search.Registry.name d)
            true
            (serial.Sorl_search.Runner.best_point = o.Sorl_search.Runner.best_point
            && serial.Sorl_search.Runner.best_cost = o.Sorl_search.Runner.best_cost
            && serial.Sorl_search.Runner.evaluations = o.Sorl_search.Runner.evaluations
            && serial.Sorl_search.Runner.total_cost = o.Sorl_search.Runner.total_cost
            && serial.Sorl_search.Runner.curve = o.Sorl_search.Runner.curve))
        [ 2; 4 ])
    Sorl_search.Registry.paper_baselines

let test_encode_csr_matches_encode () =
  let inst = List.nth tiny_instances 1 in
  let rng = Sorl_util.Rng.create 9 in
  let tunings = Array.init 40 (fun _ -> Tuning.random rng ~dims:3) in
  List.iter
    (fun mode ->
      let csr = Features.encode_csr (Features.compile mode inst) tunings in
      Array.iteri
        (fun i t ->
          checkb "CSR row bit-identical" true
            (Sorl_util.Sparse.equal ~eps:0.
               (Sorl_util.Sparse.Csr.row csr i)
               (Features.encode mode inst t)))
        tunings)
    [ Features.Canonical; Features.Extended ]

let test_bqueue_close_idempotent () =
  (* the reactor closes the worker queue during shutdown and so may a
     second stop path: double-close must be safe and drainable *)
  let q = Sorl_util.Bqueue.create ~capacity:4 in
  checkb "push before close" true (Sorl_util.Bqueue.try_push q 1);
  checkb "push before close" true (Sorl_util.Bqueue.try_push q 2);
  Sorl_util.Bqueue.close q;
  Sorl_util.Bqueue.close q;
  checkb "closed" true (Sorl_util.Bqueue.is_closed q);
  checkb "push after close fails" false (Sorl_util.Bqueue.try_push q 3);
  checkb "queued elements drain in order" true (Sorl_util.Bqueue.pop q = Some 1);
  checkb "queued elements drain in order" true (Sorl_util.Bqueue.pop q = Some 2);
  checkb "drained pop is None" true (Sorl_util.Bqueue.pop q = None);
  checkb "pop stays None" true (Sorl_util.Bqueue.pop q = None)

let suite =
  [
    Alcotest.test_case "parallel_map matches serial" `Quick test_parallel_map_matches_serial;
    Alcotest.test_case "parallel_for covers all indices" `Quick test_parallel_for_covers_all_indices;
    Alcotest.test_case "parallel_reduce" `Quick test_parallel_reduce;
    Alcotest.test_case "parallel_map_list" `Quick test_parallel_map_list;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "nested parallel use" `Quick test_nested_use;
    Alcotest.test_case "with_domains restores" `Quick test_with_domains_restores;
    Alcotest.test_case "training generate parity" `Quick test_training_generate_parity;
    Alcotest.test_case "generate counts evaluations" `Quick test_training_generate_counts_evaluations;
    Alcotest.test_case "autotuner rank parity" `Quick test_rank_parity;
    Alcotest.test_case "held-out taus parity" `Quick test_taus_parity;
    Alcotest.test_case "eval taus parity" `Quick test_eval_taus_parity;
    Alcotest.test_case "search outcome parity" `Quick test_search_parity;
    Alcotest.test_case "encode_csr matches encode" `Quick test_encode_csr_matches_encode;
    Alcotest.test_case "bqueue close is idempotent and drainable" `Quick
      test_bqueue_close_idempotent;
  ]
