(* Tests for Sorl_util.Telemetry: disabled-mode no-ops, span nesting,
   counter exactness under the pool, exporter JSON well-formedness and
   deterministic traces for seeded pipelines. *)

module T = Sorl_util.Telemetry
module Pool = Sorl_util.Pool

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* Every test leaves telemetry disabled and empty so suites composed
   after this one see the seed behaviour. *)
let with_fresh_telemetry enabled f =
  T.set_enabled enabled;
  T.reset ();
  Fun.protect
    ~finally:(fun () ->
      T.set_enabled false;
      T.reset ())
    f

(* ---- a minimal JSON parser, enough to validate the exporters ---- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some ('"' as c) | Some ('\\' as c) | Some ('/' as c) ->
          Buffer.add_char b c;
          advance ();
          go ()
        | Some 'n' ->
          Buffer.add_char b '\n';
          advance ();
          go ()
        | Some 'r' ->
          Buffer.add_char b '\r';
          advance ();
          go ()
        | Some 't' ->
          Buffer.add_char b '\t';
          advance ();
          go ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            advance ()
          done;
          Buffer.add_char b '?';
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected , or } in object"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        Arr (elements [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Obj fields -> (
    match List.assoc_opt key fields with
    | Some v -> v
    | None -> raise (Bad_json ("missing key " ^ key)))
  | _ -> raise (Bad_json ("not an object while looking up " ^ key))

(* ---- disabled mode ---- *)

let test_disabled_noop () =
  with_fresh_telemetry false @@ fun () ->
  let c = T.counter "test.disabled_counter" in
  let h = T.histogram "test.disabled_hist" in
  let r =
    T.span "test/disabled" (fun () ->
        T.incr c;
        T.add c 41;
        T.observe h 1.5;
        T.time_hist h (fun () -> 7))
  in
  checki "span passes value through" 7 r;
  checkb "enabled is off" false (T.enabled ());
  checki "no spans recorded" 0 (List.length (T.spans ()));
  checki "counter untouched" 0 (T.counter_value "test.disabled_counter");
  checkb "no histogram samples" true
    (List.for_all (fun h -> h.T.hs_name <> "test.disabled_hist") (T.histograms ()))

(* ---- span nesting and ordering ---- *)

let test_span_nesting () =
  with_fresh_telemetry true @@ fun () ->
  T.span "outer" (fun () ->
      T.span "first" (fun () -> ignore (Sys.opaque_identity 1));
      T.span "second" (fun () -> T.span "inner" (fun () -> ignore (Sys.opaque_identity 2))));
  let paths = List.map (fun s -> String.concat "/" s.T.sp_path) (T.spans ()) in
  (* Spans are listed in start order: outer starts before its children
     even though it completes last. *)
  Alcotest.(check (list string))
    "paths in start order"
    [ "outer"; "outer/first"; "outer/second"; "outer/second/inner" ]
    paths;
  List.iter
    (fun s ->
      checkb "start nonnegative" true (s.T.sp_start_s >= 0.);
      checkb "duration nonnegative" true (s.T.sp_dur_s >= 0.))
    (T.spans ());
  let agg = T.aggregated () in
  checki "four aggregated paths" 4 (List.length agg);
  match agg with
  | (root, count, _) :: _ ->
    Alcotest.(check (list string)) "root path first" [ "outer" ] root;
    checki "root count" 1 count
  | [] -> Alcotest.fail "aggregated is empty"

let test_span_exception_safety () =
  with_fresh_telemetry true @@ fun () ->
  (try T.span "boom" (fun () -> failwith "expected") with Failure _ -> ());
  T.span "after" (fun () -> ());
  let paths = List.map (fun s -> String.concat "/" s.T.sp_path) (T.spans ()) in
  (* The raising span is still recorded and the stack is unwound, so
     the next span is NOT nested under it. *)
  Alcotest.(check (list string)) "stack unwound on raise" [ "boom"; "after" ] paths

(* ---- counters under the pool ---- *)

let test_counter_atomicity () =
  with_fresh_telemetry true @@ fun () ->
  let c = T.counter "test.parallel_counter" in
  let n = 10_000 in
  List.iter
    (fun domains ->
      T.reset ();
      Pool.with_domains domains (fun () ->
          Pool.parallel_for n (fun i -> T.span "work" (fun () -> T.add c (1 + (i mod 2)))));
      checki
        (Printf.sprintf "exact total at %d domains" domains)
        (n + (n / 2))
        (T.counter_value "test.parallel_counter");
      (* every per-iteration span survives the worker domains' exit *)
      checki (Printf.sprintf "all spans kept at %d domains" domains) n (List.length (T.spans ())))
    [ 1; 2; 4 ]

(* ---- exporters ---- *)

let test_chrome_json_round_trip () =
  with_fresh_telemetry true @@ fun () ->
  let c = T.counter "test.export_counter" in
  let h = T.histogram "test.export_hist" in
  T.span "alpha" (fun () ->
      T.add c 3;
      T.observe h 0.25;
      T.observe ~count:4 h 0.75;
      T.span "beta \"quoted\"" (fun () -> ()));
  let j = parse_json (T.chrome_json ()) in
  let events = match member "traceEvents" j with Arr l -> l | _ -> [] in
  checki "two trace events" 2 (List.length events);
  List.iter
    (fun ev ->
      (match member "ph" ev with
      | Str "X" -> ()
      | _ -> Alcotest.fail "ph must be \"X\"");
      (match member "ts" ev with
      | Num ts -> checkb "ts nonnegative" true (ts >= 0.)
      | _ -> Alcotest.fail "ts must be a number");
      match (member "dur" ev, member "name" ev) with
      | Num _, Str _ -> ()
      | _ -> Alcotest.fail "dur/name malformed")
    events;
  (match member "name" (List.nth events 1) with
  | Str name -> Alcotest.(check string) "escaping survives" "beta \"quoted\"" name
  | _ -> Alcotest.fail "second event has no name");
  let metrics = member "metrics" j in
  (match member "test.export_counter" (member "counters" metrics) with
  | Num v -> checki "counter exported" 3 (int_of_float v)
  | _ -> Alcotest.fail "counter missing from metrics");
  (match member "test.export_hist" (member "histograms" metrics) with
  | Obj _ as hist -> (
    match (member "count" hist, member "mean" hist) with
    | Num count, Num mean ->
      checki "weighted count" 5 (int_of_float count);
      checkb "weighted mean" true (Float.abs (mean -. 0.65) < 1e-9)
    | _ -> Alcotest.fail "histogram stats malformed")
  | _ -> Alcotest.fail "histogram missing from metrics");
  (* the metrics-only report is valid JSON with the same counters *)
  match member "test.export_counter" (member "counters" (parse_json (T.report_json ()))) with
  | Num v -> checki "report_json counter" 3 (int_of_float v)
  | _ -> Alcotest.fail "report_json counter missing"

(* ---- determinism on a seeded pipeline ---- *)

let traced_pipeline () =
  T.reset ();
  let machine = Sorl_machine.Machine_desc.xeon_e5_2680_v3 in
  let measure = Sorl_machine.Measure.model machine in
  let spec = { Sorl.Training.size = 480; mode = Sorl_stencil.Features.Canonical; seed = 11 } in
  let tuner = Sorl.Autotuner.train ~spec measure in
  let inst = Sorl_stencil.Benchmarks.instance_by_name "gradient-256x256x256" in
  let candidates = Array.sub (Sorl_stencil.Tuning.predefined_set ~dims:3) 0 200 in
  ignore (Sorl.Autotuner.rank tuner inst candidates);
  (T.aggregated (), T.counters ())

let test_deterministic_trace () =
  with_fresh_telemetry true @@ fun () ->
  let agg1, counters1 = traced_pipeline () in
  let agg2, counters2 = traced_pipeline () in
  checkb "span paths and counts repeat" true
    (List.map (fun (p, n, _) -> (p, n)) agg1 = List.map (fun (p, n, _) -> (p, n)) agg2);
  checkb "counters repeat" true (counters1 = counters2);
  let has path = List.exists (fun (p, _, _) -> p = path) agg1 in
  checkb "generation span present" true (has [ "training/generate" ]);
  checkb "solver span present" true
    (has [ "autotuner/fit"; "solver/sgd" ] || has [ "autotuner/fit"; "solver/dcd" ]);
  checkb "rank span present" true (has [ "autotuner/rank" ]);
  checkb "candidate counter" true (List.mem_assoc "rank.candidates" counters1)

(* ---- Timer.time_repeat integration ---- *)

let test_time_repeat_into_histogram () =
  with_fresh_telemetry true @@ fun () ->
  let h = T.histogram "test.repeat_hist" in
  let mean, reps =
    Sorl_util.Timer.time_repeat ~min_time:0.001 (fun () ->
        ignore (Sys.opaque_identity (1 + 1)))
  in
  checkb "reps at least one" true (reps >= 1);
  T.observe ~count:reps h mean;
  match List.find_opt (fun s -> s.T.hs_name = "test.repeat_hist") (T.histograms ()) with
  | Some stats ->
    checki "histogram count is the repetition count" reps stats.T.hs_count;
    checkb "mean preserved" true (Float.abs (stats.T.hs_mean -. mean) < 1e-12)
  | None -> Alcotest.fail "histogram not reported"

let suite =
  [
    Alcotest.test_case "disabled mode is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "span nesting and order" `Quick test_span_nesting;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safety;
    Alcotest.test_case "counter exact under pool" `Quick test_counter_atomicity;
    Alcotest.test_case "chrome json round-trip" `Quick test_chrome_json_round_trip;
    Alcotest.test_case "deterministic seeded trace" `Quick test_deterministic_trace;
    Alcotest.test_case "time_repeat into histogram" `Quick test_time_repeat_into_histogram;
  ]
