(* Tests for the online-learning subsystem: the crash-safe segmented
   observation log (replay must recover exactly the complete-record
   prefix under truncation at EVERY byte boundary, including a torn
   seal), compaction to aggregated sufficient statistics, the
   persistent encoded-feature cache, the deterministic held-out split,
   warm-started and incremental retraining, the shrinking DCD solver,
   and the model store's generation ledger. *)

open Sorl_stencil

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let get = function Ok x -> x | Error m -> Alcotest.fail m
let get_err what = function Ok _ -> Alcotest.fail (what ^ ": expected Error") | Error m -> m

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Sys.rmdir path with Sys_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

let with_temp_dir f =
  let dir = Filename.temp_dir "sorl-learn-test" "" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let machine = Sorl_machine.Machine_desc.xeon_e5_2680_v3

(* Synthetic observations off the cost model: [n] per benchmark,
   tunings drawn from the predefined set, deterministic per seed. *)
let observations ?(benchmarks = [ "blur-1024x768"; "edge-512x512" ]) ~n seed =
  let measure = Sorl_machine.Measure.model ~noise_amplitude:0.02 ~seed machine in
  let rng = Sorl_util.Rng.create (seed * 7919) in
  List.concat_map
    (fun benchmark ->
      let inst = Benchmarks.instance_by_name benchmark in
      let set = Tuning.predefined_set ~dims:(Kernel.dims (Instance.kernel inst)) in
      List.init n (fun _ ->
          let tuning = set.(Sorl_util.Rng.int rng (Array.length set)) in
          let cost = Sorl_machine.Measure.runtime measure inst tuning in
          { Sorl_learn.Obs_log.benchmark; tuning; cost }))
    benchmarks

(* Keep the first observation of each (benchmark, tuning) point —
   compaction tests need inputs whose duplicate structure is exactly
   the one they construct. *)
let dedup obs =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (o : Sorl_learn.Obs_log.obs) ->
      let key = (o.benchmark, Tuning.to_string o.tuning) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    obs

let obs_equal (a : Sorl_learn.Obs_log.obs) (b : Sorl_learn.Obs_log.obs) =
  a.benchmark = b.benchmark && Tuning.equal a.tuning b.tuning && a.cost = b.cost

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let active_of log = Filename.concat log "active.obs"
let seg_of log i = Filename.concat log (Printf.sprintf "seg-%06d.obs" i)

(* ---- observation log ---- *)

let test_obs_log_roundtrip () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "log.obs" in
  let obs = observations ~n:10 3 in
  let w = get (Sorl_learn.Obs_log.create path) in
  List.iter (Sorl_learn.Obs_log.append w) obs;
  checki "written" (List.length obs) (Sorl_learn.Obs_log.written w);
  Sorl_learn.Obs_log.close w;
  let replayed, clean = get (Sorl_learn.Obs_log.replay path) in
  checkb "clean" true clean;
  checkb "exact roundtrip (%.17g costs)" true (List.equal obs_equal obs replayed);
  (* reopening recovers the count and keeps appending *)
  let w = get (Sorl_learn.Obs_log.create path) in
  checki "recovered count" (List.length obs) (Sorl_learn.Obs_log.written w);
  Sorl_learn.Obs_log.append w (List.hd obs);
  Sorl_learn.Obs_log.close w;
  let replayed, _ = get (Sorl_learn.Obs_log.replay path) in
  checki "append after reopen" (List.length obs + 1) (List.length replayed)

let test_obs_log_rolls_segments () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "log.obs" in
  let obs = observations ~n:5 3 in
  (* 10 observations, roll every 4: two sealed segments + 2 in the tail *)
  let w = get (Sorl_learn.Obs_log.create ~roll_at:4 path) in
  List.iter (Sorl_learn.Obs_log.append w) obs;
  checki "written across segments" 10 (Sorl_learn.Obs_log.written w);
  checki "sealed automatically" 2 (Sorl_learn.Obs_log.segments w);
  Sorl_learn.Obs_log.close w;
  checkb "segment files exist" true
    (Sys.file_exists (seg_of path 1) && Sys.file_exists (seg_of path 2));
  let replayed, clean = get (Sorl_learn.Obs_log.replay path) in
  checkb "clean" true clean;
  checkb "append order across segments" true (List.equal obs_equal obs replayed);
  (* reopen recovers counts; explicit seal rolls the 2-record tail *)
  let w = get (Sorl_learn.Obs_log.create path) in
  checki "recovered count" 10 (Sorl_learn.Obs_log.written w);
  checki "recovered segments" 2 (Sorl_learn.Obs_log.segments w);
  Sorl_learn.Obs_log.seal w;
  checki "explicit seal" 3 (Sorl_learn.Obs_log.segments w);
  Sorl_learn.Obs_log.seal w;
  checki "sealing an empty tail is a no-op" 3 (Sorl_learn.Obs_log.segments w);
  (* fsync-on-seal is purely a durability knob: same bytes, same replay *)
  Sorl_learn.Obs_log.append w (List.hd obs);
  Sorl_learn.Obs_log.close w;
  let w = get (Sorl_learn.Obs_log.create ~fsync_on_seal:true path) in
  Sorl_learn.Obs_log.seal w;
  checki "fsync seal" 4 (Sorl_learn.Obs_log.segments w);
  Sorl_learn.Obs_log.close w;
  let replayed, clean = get (Sorl_learn.Obs_log.replay path) in
  checkb "clean after fsync seal" true clean;
  checki "all records" 11 (List.length replayed)

let test_obs_log_append_validates () =
  with_temp_dir @@ fun dir ->
  let w = get (Sorl_learn.Obs_log.create (Filename.concat dir "log.obs")) in
  let t = Tuning.default ~dims:2 in
  let bad =
    [
      { Sorl_learn.Obs_log.benchmark = ""; tuning = t; cost = 1. };
      { Sorl_learn.Obs_log.benchmark = "a b"; tuning = t; cost = 1. };
      { Sorl_learn.Obs_log.benchmark = "ok"; tuning = t; cost = 0. };
      { Sorl_learn.Obs_log.benchmark = "ok"; tuning = t; cost = -1. };
      { Sorl_learn.Obs_log.benchmark = "ok"; tuning = t; cost = Float.nan };
      { Sorl_learn.Obs_log.benchmark = "ok"; tuning = t; cost = Float.infinity };
    ]
  in
  List.iter
    (fun o ->
      match Sorl_learn.Obs_log.append w o with
      | () -> Alcotest.fail "append accepted an invalid observation"
      | exception Invalid_argument _ -> ())
    bad;
  checki "nothing written" 0 (Sorl_learn.Obs_log.written w);
  Sorl_learn.Obs_log.close w

(* The satellite guarantee: truncate the active tail at EVERY byte
   boundary inside the last record; replay must recover exactly the
   complete prefix, flag the tail, and a writer reopening the torn log
   must repair it and keep appending. *)
let test_obs_log_truncation_every_byte () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "log.obs" in
  let obs = observations ~benchmarks:[ "blur-1024x768" ] ~n:4 17 in
  let w = get (Sorl_learn.Obs_log.create ~roll_at:0 path) in
  List.iter (Sorl_learn.Obs_log.append w) obs;
  Sorl_learn.Obs_log.close w;
  let full = read_file (active_of path) in
  (* byte offset where the last record starts = end of the 3rd record *)
  let prefix_end =
    let rec nth_newline i remaining =
      if remaining = 0 then i
      else nth_newline (String.index_from full i '\n' + 1) (remaining - 1)
    in
    (* header line + 3 complete records *)
    nth_newline 0 4
  in
  let torn = Filename.concat dir "torn.obs" in
  for cut = prefix_end to String.length full - 1 do
    rm_rf torn;
    Unix.mkdir torn 0o755;
    write_file (active_of torn) (String.sub full 0 cut);
    let replayed, clean = get (Sorl_learn.Obs_log.replay torn) in
    checki (Printf.sprintf "prefix at cut %d" cut) 3 (List.length replayed);
    checkb "prefix records intact" true
      (List.equal obs_equal (List.filteri (fun i _ -> i < 3) obs) replayed);
    checkb "torn tail flagged" (cut <> prefix_end) (not clean);
    (* the writer repairs the tail and the log accepts new records *)
    let w = get (Sorl_learn.Obs_log.create ~roll_at:0 torn) in
    checki "recovered" 3 (Sorl_learn.Obs_log.written w);
    Sorl_learn.Obs_log.append w (List.nth obs 3);
    Sorl_learn.Obs_log.close w;
    let replayed, clean = get (Sorl_learn.Obs_log.replay torn) in
    checkb "clean after repair" true clean;
    checkb "repaired log = original records" true (List.equal obs_equal obs replayed)
  done

(* Crash anywhere inside the seal protocol: a torn seal line is
   truncated away (the tail stays active), and a fully sealed tail that
   missed its rename is rolled forward at the next open. *)
let test_obs_log_torn_seal_recovery () =
  with_temp_dir @@ fun dir ->
  let src = Filename.concat dir "src.obs" in
  let obs = observations ~benchmarks:[ "edge-512x512" ] ~n:3 29 in
  let w = get (Sorl_learn.Obs_log.create ~roll_at:0 src) in
  List.iter (Sorl_learn.Obs_log.append w) obs;
  Sorl_learn.Obs_log.seal w;
  Sorl_learn.Obs_log.close w;
  let sealed = read_file (seg_of src 1) in
  let seal_start = String.rindex_from sealed (String.length sealed - 2) '\n' + 1 in
  let torn = Filename.concat dir "torn.obs" in
  (* every byte boundary inside the seal line: still an active tail *)
  for cut = seal_start to String.length sealed - 1 do
    rm_rf torn;
    Unix.mkdir torn 0o755;
    write_file (active_of torn) (String.sub sealed 0 cut);
    let replayed, clean = get (Sorl_learn.Obs_log.replay torn) in
    checki (Printf.sprintf "records at cut %d" cut) 3 (List.length replayed);
    checkb "torn seal flagged" (cut <> seal_start) (not clean);
    let w = get (Sorl_learn.Obs_log.create ~roll_at:0 torn) in
    checki "recovered as tail" 3 (Sorl_learn.Obs_log.written w);
    checki "no segment yet" 0 (Sorl_learn.Obs_log.segments w);
    Sorl_learn.Obs_log.close w
  done;
  (* the full seal hit the disk but the rename did not: finish the roll *)
  rm_rf torn;
  Unix.mkdir torn 0o755;
  write_file (active_of torn) sealed;
  let w = get (Sorl_learn.Obs_log.create ~roll_at:0 torn) in
  checki "roll finished" 1 (Sorl_learn.Obs_log.segments w);
  checki "records preserved" 3 (Sorl_learn.Obs_log.written w);
  Sorl_learn.Obs_log.close w;
  checkb "segment renamed" true (Sys.file_exists (seg_of torn 1));
  let replayed, clean = get (Sorl_learn.Obs_log.replay torn) in
  checkb "clean after roll" true clean;
  checkb "records intact" true (List.equal obs_equal obs replayed)

let test_obs_log_rejects_corruption () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "log.obs" in
  let obs = observations ~benchmarks:[ "edge-512x512" ] ~n:3 23 in
  let w = get (Sorl_learn.Obs_log.create ~roll_at:0 path) in
  List.iter (Sorl_learn.Obs_log.append w) obs;
  Sorl_learn.Obs_log.seal w;
  Sorl_learn.Obs_log.close w;
  let seg = seg_of path 1 in
  let full = read_file seg in
  (* flip a digit inside the second record's cost: its checksum fails,
     so replay keeps only the first record (and the seal no longer
     covers the records it counts, so it is void too) *)
  let second_start = String.index_from full (String.index full '\n' + 1) '\n' + 1 in
  let second_end = String.index_from full second_start '\n' in
  let flipped = Bytes.of_string full in
  let rec flip i =
    if i >= second_end then Alcotest.fail "no digit to corrupt"
    else
      match Bytes.get flipped i with
      | '0' .. '8' as c -> Bytes.set flipped i (Char.chr (Char.code c + 1))
      | _ -> flip (i + 1)
  in
  flip (second_start + 2);
  write_file seg (Bytes.to_string flipped);
  let replayed, clean = get (Sorl_learn.Obs_log.replay path) in
  checkb "corruption flagged" false clean;
  checkb "prefix before corruption" true
    (List.equal obs_equal [ List.hd obs ] replayed);
  (* reopening reseals the surviving prefix; the log is clean again *)
  let w = get (Sorl_learn.Obs_log.create path) in
  checki "recovered prefix" 1 (Sorl_learn.Obs_log.written w);
  Sorl_learn.Obs_log.close w;
  let _, clean = get (Sorl_learn.Obs_log.replay path) in
  checkb "clean after reseal" true clean;
  (* foreign and wrong-version headers are errors, not empty replays *)
  let alien = Filename.concat dir "alien.obs" in
  write_file alien "not an obs log\n";
  ignore (get_err "foreign header" (Sorl_learn.Obs_log.replay alien));
  write_file alien "sorl-obs v9\n";
  ignore (get_err "future version" (Sorl_learn.Obs_log.replay alien));
  ignore (get_err "writer refuses foreign file" (Sorl_learn.Obs_log.create alien))

(* A v1 single-file log replays in place and is migrated to a segment
   directory by the writer. *)
let test_obs_log_v1_compat () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "log.obs" in
  let obs = observations ~n:4 31 in
  let w = get (Sorl_learn.Obs_log.create ~roll_at:0 path) in
  List.iter (Sorl_learn.Obs_log.append w) obs;
  Sorl_learn.Obs_log.close w;
  (* record lines are shared between v1 and v2; swap the header *)
  let v2 = read_file (active_of path) in
  let body_start = String.index v2 '\n' + 1 in
  let body = String.sub v2 body_start (String.length v2 - body_start) in
  let v1_path = Filename.concat dir "v1.obs" in
  write_file v1_path ("sorl-obs v1\n" ^ body);
  let replayed, clean = get (Sorl_learn.Obs_log.replay v1_path) in
  checkb "v1 replays clean" true clean;
  checkb "v1 records" true (List.equal obs_equal obs replayed);
  (* the writer migrates the file into a directory under the same path *)
  let w = get (Sorl_learn.Obs_log.create v1_path) in
  checkb "migrated to a directory" true (Sys.is_directory v1_path);
  checki "records survive migration" (List.length obs) (Sorl_learn.Obs_log.written w);
  Sorl_learn.Obs_log.append w (List.hd obs);
  Sorl_learn.Obs_log.close w;
  let replayed, clean = get (Sorl_learn.Obs_log.replay v1_path) in
  checkb "clean after migration" true clean;
  checki "migrated + appended" (List.length obs + 1) (List.length replayed)

(* ---- compaction ---- *)

let test_obs_log_compaction () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "log.obs" in
  let obs = dedup (observations ~n:6 37) in
  let n = List.length obs in
  (* duplicate-heavy history: every observation three times, with the
     third copy at 3x cost so the aggregate mean/min are nontrivial *)
  let w = get (Sorl_learn.Obs_log.create ~roll_at:4 path) in
  List.iter (Sorl_learn.Obs_log.append w) obs;
  List.iter (Sorl_learn.Obs_log.append w) obs;
  List.iter
    (fun (o : Sorl_learn.Obs_log.obs) ->
      Sorl_learn.Obs_log.append w { o with cost = o.cost *. 3. })
    obs;
  Sorl_learn.Obs_log.seal w;
  Sorl_learn.Obs_log.close w;
  let stats = get (Sorl_learn.Obs_log.compact path) in
  checki "records before" (3 * n) stats.Sorl_learn.Obs_log.records_before;
  checki "deduplicated" n stats.Sorl_learn.Obs_log.records_after;
  let segs, tail, clean = get (Sorl_learn.Obs_log.replay_segments path) in
  checkb "clean" true clean;
  checki "one compacted segment" 1 (List.length segs);
  checki "no tail" 0 (List.length tail);
  let records = (List.hd segs).Sorl_learn.Obs_log.seg_records in
  checki "aggregates" n (List.length records);
  List.iter2
    (fun (o : Sorl_learn.Obs_log.obs) (r : Sorl_learn.Obs_log.record) ->
      checkb "first-appearance order" true (obs_equal o { r.obs with cost = o.cost });
      checki "count" 3 r.count;
      checkb "mean cost" true
        (Float.abs (r.obs.cost -. (5. *. o.cost /. 3.)) <= 1e-12 *. o.cost);
      checkb "min cost" true (r.min_cost = o.cost))
    obs records;
  (* replay surfaces the aggregate mean, one record per point *)
  let replayed, _ = get (Sorl_learn.Obs_log.replay path) in
  checki "replay = aggregates" n (List.length replayed);
  (* appending continues after compaction *)
  let w = get (Sorl_learn.Obs_log.create path) in
  checki "count after compaction" n (Sorl_learn.Obs_log.written w);
  Sorl_learn.Obs_log.append w (List.hd obs);
  Sorl_learn.Obs_log.close w;
  checki "append after compaction" (n + 1)
    (List.length (fst (get (Sorl_learn.Obs_log.replay path))))

let test_obs_log_compaction_duplicate_free_identity () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "log.obs" in
  let obs = dedup (observations ~n:8 41) in
  let w = get (Sorl_learn.Obs_log.create ~roll_at:5 path) in
  List.iter (Sorl_learn.Obs_log.append w) obs;
  Sorl_learn.Obs_log.seal w;
  Sorl_learn.Obs_log.close w;
  let before, _ = get (Sorl_learn.Obs_log.replay path) in
  let stats = get (Sorl_learn.Obs_log.compact path) in
  checki "nothing merged away"
    stats.Sorl_learn.Obs_log.records_before
    stats.Sorl_learn.Obs_log.records_after;
  let after, clean = get (Sorl_learn.Obs_log.replay path) in
  checkb "clean" true clean;
  checkb "duplicate-free compaction is the identity" true
    (List.equal obs_equal before after)

let test_obs_log_compaction_crash_recovery () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "log.obs" in
  let obs = observations ~n:6 43 in
  let w = get (Sorl_learn.Obs_log.create ~roll_at:4 path) in
  List.iter (Sorl_learn.Obs_log.append w) obs;
  List.iter (Sorl_learn.Obs_log.append w) obs;
  Sorl_learn.Obs_log.seal w;
  Sorl_learn.Obs_log.close w;
  let seg_files =
    List.filter (fun f -> String.length f = 14 && String.sub f 0 4 = "seg-")
      (Array.to_list (Sys.readdir path))
  in
  let last = seg_of path (List.length seg_files) in
  checkb "several segments" true (List.length seg_files >= 2);
  let saved =
    List.filter_map
      (fun f ->
        let p = Filename.concat path f in
        if p = last then None else Some (p, read_file p))
      seg_files
  in
  ignore (get (Sorl_learn.Obs_log.compact path));
  let compacted_expect, _ = get (Sorl_learn.Obs_log.replay path) in
  (* simulate a crash between the compacted rename and the unlinks:
     resurrect the covered segments *)
  List.iter (fun (p, bytes) -> write_file p bytes) saved;
  let replayed, _ = get (Sorl_learn.Obs_log.replay path) in
  checkb "covered segments skipped on replay" true
    (List.equal obs_equal compacted_expect replayed);
  let w = get (Sorl_learn.Obs_log.create path) in
  checki "no double counting" (List.length compacted_expect) (Sorl_learn.Obs_log.written w);
  Sorl_learn.Obs_log.close w;
  List.iter
    (fun (p, _) -> checkb "leftover segment deleted" false (Sys.file_exists p))
    saved

(* ---- encoded-feature cache ---- *)

(* Zero out one space-separated field of the sidecar's header line. *)
let tamper_header_field raw idx =
  let nl = String.index raw '\n' in
  let header = String.sub raw 0 nl in
  let rest = String.sub raw nl (String.length raw - nl) in
  let fields =
    List.mapi
      (fun i f -> if i = idx then String.map (fun _ -> '0') f else f)
      (String.split_on_char ' ' header)
  in
  String.concat " " fields ^ rest

let test_enc_cache_roundtrip_and_invalidation () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "log.obs" in
  let obs = observations ~n:6 47 in
  let unknown =
    { Sorl_learn.Obs_log.benchmark = "not-a-benchmark"; tuning = Tuning.default ~dims:2; cost = 1. }
  in
  let w = get (Sorl_learn.Obs_log.create ~roll_at:0 path) in
  List.iter (Sorl_learn.Obs_log.append w) obs;
  Sorl_learn.Obs_log.append w unknown;
  Sorl_learn.Obs_log.seal w;
  Sorl_learn.Obs_log.close w;
  let segs, _, _ = get (Sorl_learn.Obs_log.replay_segments path) in
  let seg = List.hd segs in
  let mode = Features.Extended in
  (* first touch builds the sidecar, second reuses it bit-identically *)
  let rows1, hit1 = Sorl_learn.Enc_cache.get ~mode seg in
  checkb "first touch is a miss" false hit1;
  checkb "sidecar written" true
    (Sys.file_exists (Sorl_learn.Enc_cache.path seg.Sorl_learn.Obs_log.seg_file));
  let rows2, hit2 = Sorl_learn.Enc_cache.get ~mode seg in
  checkb "second touch is a hit" true hit2;
  checki "row count" (List.length obs + 1) (Array.length rows1);
  let same =
    Array.for_all2
      (fun a b ->
        match (a, b) with
        | None, None -> true
        | Some x, Some y -> Sorl_util.Sparse.equal ~eps:0. x y
        | _ -> false)
      rows1 rows2
  in
  checkb "cached rows bit-identical to fresh encodings" true same;
  (* cached rows equal the reference encoder output *)
  List.iteri
    (fun i (o : Sorl_learn.Obs_log.obs) ->
      let inst = Benchmarks.instance_by_name o.benchmark in
      let expect = Features.encode mode inst o.tuning in
      match rows2.(i) with
      | Some s -> checkb "row = Features.encode" true (Sorl_util.Sparse.equal ~eps:0. s expect)
      | None -> Alcotest.fail "known benchmark row missing")
    obs;
  checkb "unknown benchmark row is None" true (rows2.(List.length obs) = None);
  (* a different mode is a different schema: the sidecar does not serve it *)
  checkb "mode mismatch misses" true
    (Sorl_learn.Enc_cache.load ~mode:Features.Canonical seg = None);
  (* stale schema hash or stale segment digest misses, never lies *)
  let sidecar = Sorl_learn.Enc_cache.path seg.Sorl_learn.Obs_log.seg_file in
  let raw = read_file sidecar in
  write_file sidecar (tamper_header_field raw 2);
  checkb "stale schema hash misses" true (Sorl_learn.Enc_cache.load ~mode seg = None);
  write_file sidecar (tamper_header_field raw 3);
  checkb "stale segment digest misses" true (Sorl_learn.Enc_cache.load ~mode seg = None);
  (* truncated sidecar misses *)
  write_file sidecar (String.sub raw 0 (String.length raw - 10));
  checkb "torn sidecar misses" true (Sorl_learn.Enc_cache.load ~mode seg = None);
  (* the untampered bytes still serve *)
  write_file sidecar raw;
  checkb "restored sidecar hits" true (Sorl_learn.Enc_cache.load ~mode seg <> None)

(* ---- deterministic held-out split ---- *)

let test_split_deterministic_and_stable () =
  let obs = observations ~n:60 5 in
  let train1, held1 = Sorl_learn.Trainer.split obs in
  let train2, held2 = Sorl_learn.Trainer.split obs in
  checkb "same split both times" true
    (List.equal obs_equal train1 train2 && List.equal obs_equal held1 held2);
  checki "partition" (List.length obs) (List.length train1 + List.length held1);
  checkb "both sides populated" true (train1 <> [] && held1 <> []);
  (* growing the log never migrates an existing record across the
     split: membership is a pure function of (seed, benchmark, tuning) *)
  let more = obs @ observations ~n:20 31 in
  let _, held_grown = Sorl_learn.Trainer.split more in
  let key (o : Sorl_learn.Obs_log.obs) = (o.benchmark, o.tuning) in
  let held_keys = List.map key held_grown in
  List.iter
    (fun o -> checkb "held-out membership stable" true (List.mem (key o) held_keys))
    held1;
  (* duplicates of one point never straddle the split *)
  let dup = List.hd held1 in
  let train_d, held_d = Sorl_learn.Trainer.split (dup :: obs @ [ dup ]) in
  checkb "duplicates stay held out" true
    (List.for_all (fun o -> not (obs_equal o dup)) train_d
    && List.length (List.filter (fun o -> obs_equal o dup) held_d) = 3);
  (* bad fractions are rejected, 0 holds nothing out *)
  (match Sorl_learn.Trainer.split ~holdout:1. obs with
  | _ -> Alcotest.fail "holdout = 1 accepted"
  | exception Invalid_argument _ -> ());
  let _, held0 = Sorl_learn.Trainer.split ~holdout:0. obs in
  checki "holdout 0" 0 (List.length held0)

(* ---- warm-started retraining ---- *)

(* [shrink = false] pins the exact pre-shrinking solver: this test
   compares truncated (non-converged) runs, whose trajectory the
   shrinking heuristic legitimately alters.  The shrinking and
   non-shrinking solvers agreeing at convergence has its own test
   below. *)
let dcd_params passes =
  { Sorl_svmrank.Solver_dcd.default_params with max_passes = passes; seed = 11; shrink = false }

let test_warm_start_dcd_equivalence_and_speed () =
  let obs = observations ~n:80 7 in
  let train_slice, held = Sorl_learn.Trainer.split obs in
  let mode = Features.Extended in
  let retrain ?init passes =
    get
      (Sorl_learn.Trainer.retrain
         ~solver:(Sorl.Autotuner.Dcd (dcd_params passes))
         ?init ~mode train_slice)
  in
  let tau tuner = Option.get (Sorl_learn.Trainer.holdout_tau tuner held) in
  (* init = zeros is bit-identical to the cold path (same RNG stream,
     same starting point) *)
  let dim = Features.dim mode in
  let cold = retrain 40 in
  let zeros = retrain ~init:(Array.make dim 0.) 40 in
  checkb "zero init = cold path" true
    (Sorl.Autotuner.weights cold = Sorl.Autotuner.weights zeros);
  (* warm-starting from the converged solution reaches the scratch
     optimum's held-out tau in a tenth of the passes *)
  let scratch_tau = tau cold in
  let warm_tau = tau (retrain ~init:(Sorl.Autotuner.weights cold) 4) in
  checkb
    (Printf.sprintf "warm tau %.6f within 1e-6 of scratch %.6f" warm_tau scratch_tau)
    true
    (warm_tau >= scratch_tau -. 1e-6)

let test_warm_start_dim_mismatch () =
  let obs = observations ~n:30 9 in
  let msg =
    get_err "dim mismatch"
      (Sorl_learn.Trainer.retrain ~init:(Array.make 3 0.) ~mode:Features.Extended obs)
  in
  checkb "names the mismatch" true (String.length msg > 0)

let test_retrain_error_shapes () =
  (* unknown benchmarks only -> typed error, no exception *)
  let t = Tuning.default ~dims:2 in
  let unknown = [ { Sorl_learn.Obs_log.benchmark = "nope"; tuning = t; cost = 1. } ] in
  ignore (get_err "unknown only" (Sorl_learn.Trainer.retrain ~mode:Features.Extended unknown));
  ignore (get_err "empty" (Sorl_learn.Trainer.retrain ~mode:Features.Extended []));
  (* a single observation exposes no pairs *)
  let one = observations ~benchmarks:[ "blur-1024x768" ] ~n:1 3 in
  ignore (get_err "no pairs" (Sorl_learn.Trainer.retrain ~mode:Features.Extended one))

let test_holdout_tau_and_no_worse () =
  let obs = observations ~n:80 13 in
  let train_slice, held = Sorl_learn.Trainer.split obs in
  let tuner =
    get
      (Sorl_learn.Trainer.retrain
         ~solver:(Sorl.Autotuner.Dcd (dcd_params 40))
         ~mode:Features.Extended train_slice)
  in
  let tau =
    match Sorl_learn.Trainer.holdout_tau tuner held with
    | Some t -> t
    | None -> Alcotest.fail "no held-out tau"
  in
  checkb (Printf.sprintf "tau %.3f is a correlation" tau) true (tau >= -1. && tau <= 1.);
  checkb "learned something" true (tau > 0.);
  (* a sign-flipped model ranks backwards: strictly worse *)
  let degraded =
    Sorl.Autotuner.of_model ~mode:Features.Extended
      (Sorl_svmrank.Model.create
         (Array.map (fun x -> -.x) (Sorl.Autotuner.weights tuner)))
  in
  let dtau = Option.get (Sorl_learn.Trainer.holdout_tau degraded held) in
  checkb "degraded tau negated" true (Float.abs (dtau +. tau) < 1e-9);
  checkb "no_worse accepts equal" true
    (Sorl_learn.Trainer.no_worse ~stable:tau ~candidate:tau);
  checkb "no_worse accepts better" true
    (Sorl_learn.Trainer.no_worse ~stable:tau ~candidate:(tau +. 0.1));
  checkb "no_worse rejects degraded" false
    (Sorl_learn.Trainer.no_worse ~stable:tau ~candidate:dtau);
  (* unknown benchmarks and singleton queries are skipped, not fatal *)
  let noise =
    { Sorl_learn.Obs_log.benchmark = "nope"; tuning = Tuning.default ~dims:2; cost = 1. }
  in
  let with_noise = Option.get (Sorl_learn.Trainer.holdout_tau tuner (noise :: held)) in
  checkb "unknown benchmark skipped in tau" true (Float.abs (with_noise -. tau) < 1e-12);
  checkb "tau of nothing" true (Sorl_learn.Trainer.holdout_tau tuner [ noise ] = None)

(* ---- model store / shared tuner ---- *)

let tiny_tuner =
  lazy
    (let spec = { Sorl.Training.size = 120; mode = Features.Extended; seed = 3 } in
     let instances =
       [
         Instance.create_xyz Benchmarks.edge ~sx:256 ~sy:256 ~sz:1;
         Instance.create_xyz Benchmarks.blur ~sx:512 ~sy:512 ~sz:1;
       ]
     in
     Sorl.Autotuner.train_on ~mode:Features.Extended
       (Sorl.Training.generate ~spec ~instances (Sorl_machine.Measure.model machine)))

(* Near-tied costs are degenerate: a spread within float noise must not
   produce a tau (regression test — the check used to be exact float
   equality, which 1 ulp of measurement noise defeats). *)
let test_per_benchmark_tau_epsilon () =
  let tuner = Lazy.force tiny_tuner in
  let set = Tuning.predefined_set ~dims:2 in
  let t1 = set.(0) and t2 = set.(1) in
  let near_tied =
    [
      { Sorl_learn.Obs_log.benchmark = "blur-1024x768"; tuning = t1; cost = 1.0 };
      { Sorl_learn.Obs_log.benchmark = "blur-1024x768"; tuning = t2; cost = 1.0 +. 1e-13 };
    ]
  in
  checkb "near-tied costs expose no ranking" true
    (Sorl_learn.Trainer.holdout_tau tuner near_tied = None);
  checkb "per-benchmark list likewise" true
    (Sorl_learn.Trainer.per_benchmark_tau tuner near_tied = []);
  let separated =
    [
      { Sorl_learn.Obs_log.benchmark = "blur-1024x768"; tuning = t1; cost = 1.0 };
      { Sorl_learn.Obs_log.benchmark = "blur-1024x768"; tuning = t2; cost = 1.001 };
    ]
  in
  checkb "separated costs do" true (Sorl_learn.Trainer.holdout_tau tuner separated <> None)

(* ---- incremental retraining ---- *)

let test_incremental_retrain_parity_and_reuse () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "log.obs" in
  let obs = observations ~n:40 19 in
  let w = get (Sorl_learn.Obs_log.create ~roll_at:16 path) in
  List.iter (Sorl_learn.Obs_log.append w) obs;
  Sorl_learn.Obs_log.close w;
  let mode = Features.Extended in
  let solver = Sorl.Autotuner.Dcd (dcd_params 30) in
  (* cold full-replay path *)
  let replayed, _ = get (Sorl_learn.Obs_log.replay path) in
  let train_slice, held_ref = Sorl_learn.Trainer.split replayed in
  let cold = get (Sorl_learn.Trainer.retrain ~solver ~mode train_slice) in
  (* incremental path, twice: the first run builds the sidecars *)
  let inc1 = get (Sorl_learn.Trainer.retrain_incremental ~solver ~mode path) in
  let inc2 = get (Sorl_learn.Trainer.retrain_incremental ~solver ~mode path) in
  checkb "incremental weights = cold weights (bit-identical)" true
    (Sorl.Autotuner.weights cold = Sorl.Autotuner.weights inc1.Sorl_learn.Trainer.tuner);
  checkb "second run likewise" true
    (Sorl.Autotuner.weights cold = Sorl.Autotuner.weights inc2.Sorl_learn.Trainer.tuner);
  checkb "same held-out slice" true
    (List.equal obs_equal held_ref inc1.Sorl_learn.Trainer.held);
  let s1 = inc1.Sorl_learn.Trainer.stats and s2 = inc2.Sorl_learn.Trainer.stats in
  let n = List.length obs in
  checki "replayed" n s1.Sorl_learn.Trainer.replayed;
  checkb "several sealed segments" true (s1.Sorl_learn.Trainer.segments_total >= 2);
  checki "first run encodes everything" n s1.Sorl_learn.Trainer.records_encoded;
  checki "first run reuses nothing" 0 s1.Sorl_learn.Trainer.segments_reused;
  (* the second run re-encodes only the tail *)
  checki "second run reuses every segment" s2.Sorl_learn.Trainer.segments_total
    s2.Sorl_learn.Trainer.segments_reused;
  checki "second run encodes only the tail" (n mod 16) s2.Sorl_learn.Trainer.records_encoded;
  checki "second run serves the rest from cache" (n - (n mod 16))
    s2.Sorl_learn.Trainer.records_cached

let test_incremental_retrain_compacted_tau () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "log.obs" in
  let obs = dedup (observations ~n:40 53) in
  let mode = Features.Extended in
  let solver = Sorl.Autotuner.Dcd (dcd_params 30) in
  (* duplicate-heavy log: every record twice (identical costs) *)
  let w = get (Sorl_learn.Obs_log.create ~roll_at:20 path) in
  List.iter
    (fun o ->
      Sorl_learn.Obs_log.append w o;
      Sorl_learn.Obs_log.append w o)
    obs;
  Sorl_learn.Obs_log.seal w;
  Sorl_learn.Obs_log.close w;
  let full = get (Sorl_learn.Trainer.retrain_incremental ~solver ~mode path) in
  let count_records segs =
    List.fold_left
      (fun acc s -> acc + List.length s.Sorl_learn.Obs_log.seg_records)
      0 segs
  in
  let before, _, _ = get (Sorl_learn.Obs_log.replay_segments path) in
  ignore (get (Sorl_learn.Obs_log.compact path));
  let after, _, _ = get (Sorl_learn.Obs_log.replay_segments path) in
  checkb "compaction halved the training records" true
    (2 * count_records after = count_records before);
  let compacted = get (Sorl_learn.Trainer.retrain_incremental ~solver ~mode path) in
  let tau t =
    Option.get
      (Sorl_learn.Trainer.holdout_tau t.Sorl_learn.Trainer.tuner
         full.Sorl_learn.Trainer.held)
  in
  let tau_full = tau full and tau_compact = tau compacted in
  checkb
    (Printf.sprintf "compacted tau %.4f close to full %.4f" tau_compact tau_full)
    true
    (Float.abs (tau_compact -. tau_full) <= 0.15)

(* ---- shrinking DCD ---- *)

let test_shrinking_dcd_matches_unshrunk () =
  let rng = Sorl_util.Rng.create 613 in
  let dim = 24 in
  let random_pairs m =
    Array.init m (fun _ ->
        let nnz = 1 + Sorl_util.Rng.int rng 6 in
        let idx = Sorl_util.Rng.sample_without_replacement rng nnz dim in
        Sorl_util.Sparse.of_list ~dim
          (Array.to_list
             (Array.map (fun i -> (i, (2. *. Sorl_util.Rng.uniform rng) -. 1.)) idx)))
  in
  let params shrink =
    { Sorl_svmrank.Solver_dcd.default_params with max_passes = 500; seed = 7; shrink }
  in
  for _trial = 1 to 5 do
    let zs = random_pairs (120 + Sorl_util.Rng.int rng 80) in
    let w_plain =
      Sorl_svmrank.Model.weights
        (Sorl_svmrank.Solver_dcd.train_on_pairs ~params:(params false) ~dim zs)
    in
    let w_shrunk =
      Sorl_svmrank.Model.weights
        (Sorl_svmrank.Solver_dcd.train_on_pairs ~params:(params true) ~dim zs)
    in
    let worst = ref 0. in
    Array.iteri
      (fun i x ->
        let d = Float.abs (x -. w_shrunk.(i)) in
        if d > !worst then worst := d)
      w_plain;
    checkb
      (Printf.sprintf "shrunk w within tol of plain w (max diff %.2e)" !worst)
      true
      (!worst <= (params true).Sorl_svmrank.Solver_dcd.tol)
  done;
  (* shrinking actually fires, visibly in telemetry *)
  let was = Sorl_util.Telemetry.enabled () in
  Sorl_util.Telemetry.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Sorl_util.Telemetry.set_enabled was)
    (fun () ->
      let before = Sorl_util.Telemetry.counter_value "solver.shrunk_pairs" in
      ignore
        (Sorl_svmrank.Solver_dcd.train_on_pairs ~params:(params true) ~dim
           (random_pairs 200));
      checkb "solver.shrunk_pairs advanced" true
        (Sorl_util.Telemetry.counter_value "solver.shrunk_pairs" > before))

(* ---- model store generations ---- *)

let test_store_generations () =
  with_temp_dir @@ fun dir ->
  let open Sorl_serve in
  let st = get (Model_store.open_dir dir) in
  let tuner = Lazy.force tiny_tuner in
  get (Model_store.save st ~name:"default" tuner);
  checkb "no generations yet" true (Model_store.list_generations st ~base:"default" = []);
  let pub ?generation () =
    match Model_store.publish ?generation st ~base:"default" tuner with
    | Ok r -> r
    | Error (Model_store.Generation_exists e) -> Alcotest.fail ("exists: " ^ e)
    | Error (Model_store.Publish_failed m) -> Alcotest.fail m
  in
  let n1, g1 = pub () in
  let n2, g2 = pub () in
  checkb "auto-numbered" true (g1 = 1 && g2 = 2 && n1 = "default.g1" && n2 = "default.g2");
  checkb "listed ascending" true
    (Model_store.list_generations st ~base:"default" = [ 1; 2 ]);
  (* published generations load back like any entry *)
  ignore (get (Model_store.load st ~name:"default.g2"));
  (* republish of a taken number is the typed error *)
  (match Model_store.publish ~generation:2 st ~base:"default" tuner with
  | Error (Model_store.Generation_exists e) -> checkb "names entry" true (e = "default.g2")
  | Error (Model_store.Publish_failed m) -> Alcotest.fail m
  | Ok _ -> Alcotest.fail "clobbered generation 2");
  (* lookalike names never count as generations *)
  get (Model_store.save st ~name:"default.g2x" tuner);
  get (Model_store.save st ~name:"other.g9" tuner);
  checkb "lookalikes ignored" true
    (Model_store.list_generations st ~base:"default" = [ 1; 2 ]);
  (* prune keeps the newest [keep], never the base or other names *)
  let _ = pub () in
  let _ = pub () in
  let removed = get (Model_store.prune st ~base:"default" ~keep:2) in
  checkb "removed oldest two" true (removed = [ "default.g1"; "default.g2" ]);
  checkb "newest kept" true
    (Model_store.list_generations st ~base:"default" = [ 3; 4 ]);
  checkb "base untouched" true (List.mem "default" (Model_store.list st));
  checkb "lookalikes untouched" true (List.mem "default.g2x" (Model_store.list st));
  checki "prune is idempotent" 0 (List.length (get (Model_store.prune st ~base:"default" ~keep:2)));
  ignore (get_err "negative keep" (Model_store.prune st ~base:"default" ~keep:(-1)))

let suite =
  [
    Alcotest.test_case "obs-log roundtrip" `Quick test_obs_log_roundtrip;
    Alcotest.test_case "obs-log rolls segments" `Quick test_obs_log_rolls_segments;
    Alcotest.test_case "obs-log append validates" `Quick test_obs_log_append_validates;
    Alcotest.test_case "obs-log truncation at every byte" `Quick
      test_obs_log_truncation_every_byte;
    Alcotest.test_case "obs-log torn seal recovery" `Quick test_obs_log_torn_seal_recovery;
    Alcotest.test_case "obs-log rejects corruption" `Quick test_obs_log_rejects_corruption;
    Alcotest.test_case "obs-log v1 compat" `Quick test_obs_log_v1_compat;
    Alcotest.test_case "obs-log compaction" `Quick test_obs_log_compaction;
    Alcotest.test_case "obs-log compaction identity" `Quick
      test_obs_log_compaction_duplicate_free_identity;
    Alcotest.test_case "obs-log compaction crash recovery" `Quick
      test_obs_log_compaction_crash_recovery;
    Alcotest.test_case "enc-cache roundtrip and invalidation" `Quick
      test_enc_cache_roundtrip_and_invalidation;
    Alcotest.test_case "split deterministic and stable" `Quick
      test_split_deterministic_and_stable;
    Alcotest.test_case "warm start: equivalence and speed" `Quick
      test_warm_start_dcd_equivalence_and_speed;
    Alcotest.test_case "warm start: dim mismatch" `Quick test_warm_start_dim_mismatch;
    Alcotest.test_case "retrain error shapes" `Quick test_retrain_error_shapes;
    Alcotest.test_case "holdout tau and promotion rule" `Quick
      test_holdout_tau_and_no_worse;
    Alcotest.test_case "per-benchmark tau epsilon" `Quick test_per_benchmark_tau_epsilon;
    Alcotest.test_case "incremental retrain parity" `Quick
      test_incremental_retrain_parity_and_reuse;
    Alcotest.test_case "incremental retrain on compacted log" `Quick
      test_incremental_retrain_compacted_tau;
    Alcotest.test_case "shrinking dcd matches unshrunk" `Quick
      test_shrinking_dcd_matches_unshrunk;
    Alcotest.test_case "store generations" `Quick test_store_generations;
  ]
