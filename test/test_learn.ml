(* Tests for the online-learning subsystem: the crash-safe observation
   log (replay must recover exactly the complete-record prefix under
   truncation at EVERY byte boundary), the deterministic held-out
   split, warm-started retraining, and the model store's generation
   ledger. *)

open Sorl_stencil

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let get = function Ok x -> x | Error m -> Alcotest.fail m
let get_err what = function Ok _ -> Alcotest.fail (what ^ ": expected Error") | Error m -> m

let with_temp_dir f =
  let dir = Filename.temp_dir "sorl-learn-test" "" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let machine = Sorl_machine.Machine_desc.xeon_e5_2680_v3

(* Synthetic observations off the cost model: [n] per benchmark,
   tunings drawn from the predefined set, deterministic per seed. *)
let observations ?(benchmarks = [ "blur-1024x768"; "edge-512x512" ]) ~n seed =
  let measure = Sorl_machine.Measure.model ~noise_amplitude:0.02 ~seed machine in
  let rng = Sorl_util.Rng.create (seed * 7919) in
  List.concat_map
    (fun benchmark ->
      let inst = Benchmarks.instance_by_name benchmark in
      let set = Tuning.predefined_set ~dims:(Kernel.dims (Instance.kernel inst)) in
      List.init n (fun _ ->
          let tuning = set.(Sorl_util.Rng.int rng (Array.length set)) in
          let cost = Sorl_machine.Measure.runtime measure inst tuning in
          { Sorl_learn.Obs_log.benchmark; tuning; cost }))
    benchmarks

let obs_equal (a : Sorl_learn.Obs_log.obs) (b : Sorl_learn.Obs_log.obs) =
  a.benchmark = b.benchmark && Tuning.equal a.tuning b.tuning && a.cost = b.cost

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ---- observation log ---- *)

let test_obs_log_roundtrip () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "log.obs" in
  let obs = observations ~n:10 3 in
  let w = get (Sorl_learn.Obs_log.create path) in
  List.iter (Sorl_learn.Obs_log.append w) obs;
  checki "written" (List.length obs) (Sorl_learn.Obs_log.written w);
  Sorl_learn.Obs_log.close w;
  let replayed, clean = get (Sorl_learn.Obs_log.replay path) in
  checkb "clean" true clean;
  checkb "exact roundtrip (%.17g costs)" true (List.equal obs_equal obs replayed);
  (* reopening recovers the count and keeps appending *)
  let w = get (Sorl_learn.Obs_log.create path) in
  checki "recovered count" (List.length obs) (Sorl_learn.Obs_log.written w);
  Sorl_learn.Obs_log.append w (List.hd obs);
  Sorl_learn.Obs_log.close w;
  let replayed, _ = get (Sorl_learn.Obs_log.replay path) in
  checki "append after reopen" (List.length obs + 1) (List.length replayed)

let test_obs_log_append_validates () =
  with_temp_dir @@ fun dir ->
  let w = get (Sorl_learn.Obs_log.create (Filename.concat dir "log.obs")) in
  let t = Tuning.default ~dims:2 in
  let bad =
    [
      { Sorl_learn.Obs_log.benchmark = ""; tuning = t; cost = 1. };
      { Sorl_learn.Obs_log.benchmark = "a b"; tuning = t; cost = 1. };
      { Sorl_learn.Obs_log.benchmark = "ok"; tuning = t; cost = 0. };
      { Sorl_learn.Obs_log.benchmark = "ok"; tuning = t; cost = -1. };
      { Sorl_learn.Obs_log.benchmark = "ok"; tuning = t; cost = Float.nan };
      { Sorl_learn.Obs_log.benchmark = "ok"; tuning = t; cost = Float.infinity };
    ]
  in
  List.iter
    (fun o ->
      match Sorl_learn.Obs_log.append w o with
      | () -> Alcotest.fail "append accepted an invalid observation"
      | exception Invalid_argument _ -> ())
    bad;
  checki "nothing written" 0 (Sorl_learn.Obs_log.written w);
  Sorl_learn.Obs_log.close w

(* The satellite guarantee: truncate the log at EVERY byte boundary
   inside the last record; replay must recover exactly the complete
   prefix, flag the tail, and a writer reopening the torn file must
   repair it and keep appending. *)
let test_obs_log_truncation_every_byte () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "log.obs" in
  let obs = observations ~benchmarks:[ "blur-1024x768" ] ~n:4 17 in
  let w = get (Sorl_learn.Obs_log.create path) in
  List.iter (Sorl_learn.Obs_log.append w) obs;
  Sorl_learn.Obs_log.close w;
  let full = read_file path in
  (* byte offset where the last record starts = end of the 3rd record *)
  let prefix_end =
    let rec nth_newline i remaining =
      if remaining = 0 then i
      else nth_newline (String.index_from full i '\n' + 1) (remaining - 1)
    in
    (* header line + 3 complete records *)
    nth_newline 0 4
  in
  let torn = Filename.concat dir "torn.obs" in
  for cut = prefix_end to String.length full - 1 do
    write_file torn (String.sub full 0 cut);
    let replayed, clean = get (Sorl_learn.Obs_log.replay torn) in
    checki (Printf.sprintf "prefix at cut %d" cut) 3 (List.length replayed);
    checkb "prefix records intact" true
      (List.equal obs_equal (List.filteri (fun i _ -> i < 3) obs) replayed);
    checkb "torn tail flagged" (cut <> prefix_end) (not clean);
    (* the writer repairs the tail and the log accepts new records *)
    let w = get (Sorl_learn.Obs_log.create torn) in
    checki "recovered" 3 (Sorl_learn.Obs_log.written w);
    Sorl_learn.Obs_log.append w (List.nth obs 3);
    Sorl_learn.Obs_log.close w;
    let replayed, clean = get (Sorl_learn.Obs_log.replay torn) in
    checkb "clean after repair" true clean;
    checkb "repaired log = original records" true (List.equal obs_equal obs replayed)
  done

let test_obs_log_rejects_corruption () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "log.obs" in
  let obs = observations ~benchmarks:[ "edge-512x512" ] ~n:3 23 in
  let w = get (Sorl_learn.Obs_log.create path) in
  List.iter (Sorl_learn.Obs_log.append w) obs;
  Sorl_learn.Obs_log.close w;
  let full = read_file path in
  (* flip a digit inside the second record's cost: its checksum fails,
     so replay keeps only the first record *)
  let second_start = String.index_from full (String.index full '\n' + 1) '\n' + 1 in
  let second_end = String.index_from full second_start '\n' in
  let flipped = Bytes.of_string full in
  let rec flip i =
    if i >= second_end then Alcotest.fail "no digit to corrupt"
    else
      match Bytes.get flipped i with
      | '0' .. '8' as c -> Bytes.set flipped i (Char.chr (Char.code c + 1))
      | _ -> flip (i + 1)
  in
  flip (second_start + 2);
  let corrupt = Filename.concat dir "corrupt.obs" in
  write_file corrupt (Bytes.to_string flipped);
  let replayed, clean = get (Sorl_learn.Obs_log.replay corrupt) in
  checkb "corruption flagged" false clean;
  checkb "prefix before corruption" true
    (List.equal obs_equal [ List.hd obs ] replayed);
  (* foreign and wrong-version headers are errors, not empty replays *)
  let alien = Filename.concat dir "alien.obs" in
  write_file alien "not an obs log\n";
  ignore (get_err "foreign header" (Sorl_learn.Obs_log.replay alien));
  write_file alien "sorl-obs v9\n";
  ignore (get_err "future version" (Sorl_learn.Obs_log.replay alien));
  ignore (get_err "writer refuses foreign file" (Sorl_learn.Obs_log.create alien))

(* ---- deterministic held-out split ---- *)

let test_split_deterministic_and_stable () =
  let obs = observations ~n:60 5 in
  let train1, held1 = Sorl_learn.Trainer.split obs in
  let train2, held2 = Sorl_learn.Trainer.split obs in
  checkb "same split both times" true
    (List.equal obs_equal train1 train2 && List.equal obs_equal held1 held2);
  checki "partition" (List.length obs) (List.length train1 + List.length held1);
  checkb "both sides populated" true (train1 <> [] && held1 <> []);
  (* growing the log never migrates an existing record across the
     split: membership is a pure function of (seed, benchmark, tuning) *)
  let more = obs @ observations ~n:20 31 in
  let _, held_grown = Sorl_learn.Trainer.split more in
  let key (o : Sorl_learn.Obs_log.obs) = (o.benchmark, o.tuning) in
  let held_keys = List.map key held_grown in
  List.iter
    (fun o -> checkb "held-out membership stable" true (List.mem (key o) held_keys))
    held1;
  (* duplicates of one point never straddle the split *)
  let dup = List.hd held1 in
  let train_d, held_d = Sorl_learn.Trainer.split (dup :: obs @ [ dup ]) in
  checkb "duplicates stay held out" true
    (List.for_all (fun o -> not (obs_equal o dup)) train_d
    && List.length (List.filter (fun o -> obs_equal o dup) held_d) = 3);
  (* bad fractions are rejected, 0 holds nothing out *)
  (match Sorl_learn.Trainer.split ~holdout:1. obs with
  | _ -> Alcotest.fail "holdout = 1 accepted"
  | exception Invalid_argument _ -> ());
  let _, held0 = Sorl_learn.Trainer.split ~holdout:0. obs in
  checki "holdout 0" 0 (List.length held0)

(* ---- warm-started retraining ---- *)

let dcd_params passes =
  { Sorl_svmrank.Solver_dcd.default_params with max_passes = passes; seed = 11 }

let test_warm_start_dcd_equivalence_and_speed () =
  let obs = observations ~n:80 7 in
  let train_slice, held = Sorl_learn.Trainer.split obs in
  let mode = Features.Extended in
  let retrain ?init passes =
    get
      (Sorl_learn.Trainer.retrain
         ~solver:(Sorl.Autotuner.Dcd (dcd_params passes))
         ?init ~mode train_slice)
  in
  let tau tuner = Option.get (Sorl_learn.Trainer.holdout_tau tuner held) in
  (* init = zeros is bit-identical to the cold path (same RNG stream,
     same starting point) *)
  let dim = Features.dim mode in
  let cold = retrain 40 in
  let zeros = retrain ~init:(Array.make dim 0.) 40 in
  checkb "zero init = cold path" true
    (Sorl.Autotuner.weights cold = Sorl.Autotuner.weights zeros);
  (* warm-starting from the converged solution reaches the scratch
     optimum's held-out tau in a tenth of the passes *)
  let scratch_tau = tau cold in
  let warm_tau = tau (retrain ~init:(Sorl.Autotuner.weights cold) 4) in
  checkb
    (Printf.sprintf "warm tau %.6f within 1e-6 of scratch %.6f" warm_tau scratch_tau)
    true
    (warm_tau >= scratch_tau -. 1e-6)

let test_warm_start_dim_mismatch () =
  let obs = observations ~n:30 9 in
  let msg =
    get_err "dim mismatch"
      (Sorl_learn.Trainer.retrain ~init:(Array.make 3 0.) ~mode:Features.Extended obs)
  in
  checkb "names the mismatch" true (String.length msg > 0)

let test_retrain_error_shapes () =
  (* unknown benchmarks only -> typed error, no exception *)
  let t = Tuning.default ~dims:2 in
  let unknown = [ { Sorl_learn.Obs_log.benchmark = "nope"; tuning = t; cost = 1. } ] in
  ignore (get_err "unknown only" (Sorl_learn.Trainer.retrain ~mode:Features.Extended unknown));
  ignore (get_err "empty" (Sorl_learn.Trainer.retrain ~mode:Features.Extended []));
  (* a single observation exposes no pairs *)
  let one = observations ~benchmarks:[ "blur-1024x768" ] ~n:1 3 in
  ignore (get_err "no pairs" (Sorl_learn.Trainer.retrain ~mode:Features.Extended one))

let test_holdout_tau_and_no_worse () =
  let obs = observations ~n:80 13 in
  let train_slice, held = Sorl_learn.Trainer.split obs in
  let tuner =
    get
      (Sorl_learn.Trainer.retrain
         ~solver:(Sorl.Autotuner.Dcd (dcd_params 40))
         ~mode:Features.Extended train_slice)
  in
  let tau =
    match Sorl_learn.Trainer.holdout_tau tuner held with
    | Some t -> t
    | None -> Alcotest.fail "no held-out tau"
  in
  checkb (Printf.sprintf "tau %.3f is a correlation" tau) true (tau >= -1. && tau <= 1.);
  checkb "learned something" true (tau > 0.);
  (* a sign-flipped model ranks backwards: strictly worse *)
  let degraded =
    Sorl.Autotuner.of_model ~mode:Features.Extended
      (Sorl_svmrank.Model.create
         (Array.map (fun x -> -.x) (Sorl.Autotuner.weights tuner)))
  in
  let dtau = Option.get (Sorl_learn.Trainer.holdout_tau degraded held) in
  checkb "degraded tau negated" true (Float.abs (dtau +. tau) < 1e-9);
  checkb "no_worse accepts equal" true
    (Sorl_learn.Trainer.no_worse ~stable:tau ~candidate:tau);
  checkb "no_worse accepts better" true
    (Sorl_learn.Trainer.no_worse ~stable:tau ~candidate:(tau +. 0.1));
  checkb "no_worse rejects degraded" false
    (Sorl_learn.Trainer.no_worse ~stable:tau ~candidate:dtau);
  (* unknown benchmarks and singleton queries are skipped, not fatal *)
  let noise =
    { Sorl_learn.Obs_log.benchmark = "nope"; tuning = Tuning.default ~dims:2; cost = 1. }
  in
  let with_noise = Option.get (Sorl_learn.Trainer.holdout_tau tuner (noise :: held)) in
  checkb "unknown benchmark skipped in tau" true (Float.abs (with_noise -. tau) < 1e-12);
  checkb "tau of nothing" true (Sorl_learn.Trainer.holdout_tau tuner [ noise ] = None)

(* ---- model store generations ---- *)

let tiny_tuner =
  lazy
    (let spec = { Sorl.Training.size = 120; mode = Features.Extended; seed = 3 } in
     let instances =
       [
         Instance.create_xyz Benchmarks.edge ~sx:256 ~sy:256 ~sz:1;
         Instance.create_xyz Benchmarks.blur ~sx:512 ~sy:512 ~sz:1;
       ]
     in
     Sorl.Autotuner.train_on ~mode:Features.Extended
       (Sorl.Training.generate ~spec ~instances (Sorl_machine.Measure.model machine)))

let test_store_generations () =
  with_temp_dir @@ fun dir ->
  let open Sorl_serve in
  let st = get (Model_store.open_dir dir) in
  let tuner = Lazy.force tiny_tuner in
  get (Model_store.save st ~name:"default" tuner);
  checkb "no generations yet" true (Model_store.list_generations st ~base:"default" = []);
  let pub ?generation () =
    match Model_store.publish ?generation st ~base:"default" tuner with
    | Ok r -> r
    | Error (Model_store.Generation_exists e) -> Alcotest.fail ("exists: " ^ e)
    | Error (Model_store.Publish_failed m) -> Alcotest.fail m
  in
  let n1, g1 = pub () in
  let n2, g2 = pub () in
  checkb "auto-numbered" true (g1 = 1 && g2 = 2 && n1 = "default.g1" && n2 = "default.g2");
  checkb "listed ascending" true
    (Model_store.list_generations st ~base:"default" = [ 1; 2 ]);
  (* published generations load back like any entry *)
  ignore (get (Model_store.load st ~name:"default.g2"));
  (* republish of a taken number is the typed error *)
  (match Model_store.publish ~generation:2 st ~base:"default" tuner with
  | Error (Model_store.Generation_exists e) -> checkb "names entry" true (e = "default.g2")
  | Error (Model_store.Publish_failed m) -> Alcotest.fail m
  | Ok _ -> Alcotest.fail "clobbered generation 2");
  (* lookalike names never count as generations *)
  get (Model_store.save st ~name:"default.g2x" tuner);
  get (Model_store.save st ~name:"other.g9" tuner);
  checkb "lookalikes ignored" true
    (Model_store.list_generations st ~base:"default" = [ 1; 2 ]);
  (* prune keeps the newest [keep], never the base or other names *)
  let _ = pub () in
  let _ = pub () in
  let removed = get (Model_store.prune st ~base:"default" ~keep:2) in
  checkb "removed oldest two" true (removed = [ "default.g1"; "default.g2" ]);
  checkb "newest kept" true
    (Model_store.list_generations st ~base:"default" = [ 3; 4 ]);
  checkb "base untouched" true (List.mem "default" (Model_store.list st));
  checkb "lookalikes untouched" true (List.mem "default.g2x" (Model_store.list st));
  checki "prune is idempotent" 0 (List.length (get (Model_store.prune st ~base:"default" ~keep:2)));
  ignore (get_err "negative keep" (Model_store.prune st ~base:"default" ~keep:(-1)))

let suite =
  [
    Alcotest.test_case "obs-log roundtrip" `Quick test_obs_log_roundtrip;
    Alcotest.test_case "obs-log append validates" `Quick test_obs_log_append_validates;
    Alcotest.test_case "obs-log truncation at every byte" `Quick
      test_obs_log_truncation_every_byte;
    Alcotest.test_case "obs-log rejects corruption" `Quick test_obs_log_rejects_corruption;
    Alcotest.test_case "split deterministic and stable" `Quick
      test_split_deterministic_and_stable;
    Alcotest.test_case "warm start: equivalence and speed" `Quick
      test_warm_start_dcd_equivalence_and_speed;
    Alcotest.test_case "warm start: dim mismatch" `Quick test_warm_start_dim_mismatch;
    Alcotest.test_case "retrain error shapes" `Quick test_retrain_error_shapes;
    Alcotest.test_case "holdout tau and promotion rule" `Quick
      test_holdout_tau_and_no_worse;
    Alcotest.test_case "store generations" `Quick test_store_generations;
  ]
