(* Tests for the fleet tier: consistent-hash ring invariants (qcheck),
   the router's byte-equivalence with a direct server, failover past a
   dead shard, fleet-wide rolling reload under load, and the
   shard-process supervisor (which re-executes this very test binary —
   see Fleet.maybe_shard_main in test/main.ml). *)

open Sorl_stencil
open Sorl_serve

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let get = function Ok x -> x | Error m -> Alcotest.fail m
let benchmark = Test_serve.benchmark

(* ---- ring ---- *)

let shard_names n = List.init n (fun i -> Printf.sprintf "shard-%d" i)
let keys n = List.init n (fun i -> Printf.sprintf "bench-%d/rank" i)

let test_ring_basics () =
  let r = Ring.create (shard_names 4) in
  checki "size" 4 (Ring.size r);
  checks "name by index" "shard-2" (Ring.name r 2);
  List.iter
    (fun key ->
      let o = Ring.owner r key in
      let os = Ring.owners r key in
      checki "owners head = owner" o (List.hd os);
      checki "owners covers every shard once" 4
        (List.length (List.sort_uniq compare os)))
    (keys 100);
  (* layout depends only on the set of names, not their order *)
  let r' = Ring.create (List.rev (shard_names 4)) in
  List.iter
    (fun key ->
      checks "order-insensitive placement"
        (Ring.name r (Ring.owner r key))
        (Ring.name r' (Ring.owner r' key)))
    (keys 100);
  (match Ring.create [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty ring accepted");
  match Ring.create [ "a"; "b"; "a" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate shard name accepted"

let test_ring_balance () =
  (* 128 virtual points per shard keep the arcs even enough that no
     shard of four owns less than a twentieth of a large keyspace *)
  let n = 4 and total = 4000 in
  let r = Ring.create (shard_names n) in
  let counts = Array.make n 0 in
  List.iter (fun k -> counts.(Ring.owner r k) <- counts.(Ring.owner r k) + 1) (keys total);
  Array.iteri
    (fun i c ->
      checkb
        (Printf.sprintf "shard %d owns a fair share (%d/%d)" i c total)
        true
        (c >= total * 5 / 100))
    counts

(* The two exact stability invariants. Removal: a key not owned by the
   removed shard keeps its owner. Addition: a key that moves lands on
   the new shard. Together they bound churn to the resized shard's own
   arcs — about 1/N of the keyspace. *)
let ring_stability_tests =
  let gen = QCheck2.Gen.(pair (int_range 2 8) (int_range 50 400)) in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:60 ~name:"ring: removal moves only the removed shard's keys"
         gen (fun (n, nkeys) ->
           let all = shard_names n in
           let removed = List.nth all (n / 2) in
           let before = Ring.create all in
           let after = Ring.create (List.filter (fun s -> s <> removed) all) in
           List.for_all
             (fun key ->
               let o = Ring.name before (Ring.owner before key) in
               o = removed || Ring.name after (Ring.owner after key) = o)
             (keys nkeys)));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:60 ~name:"ring: a key moved by addition lands on the new shard"
         gen (fun (n, nkeys) ->
           let before = Ring.create (shard_names n) in
           let added = "shard-new" in
           let after = Ring.create (added :: shard_names n) in
           List.for_all
             (fun key ->
               let o = Ring.name before (Ring.owner before key) in
               let o' = Ring.name after (Ring.owner after key) in
               o' = o || o' = added)
             (keys nkeys)));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:30 ~name:"ring: addition moves about 1/N of the keyspace"
         (QCheck2.Gen.int_range 2 8) (fun n ->
           let nkeys = 2000 in
           let before = Ring.create (shard_names n) in
           let after = Ring.create ("shard-new" :: shard_names n) in
           let moved =
             List.length
               (List.filter
                  (fun key ->
                    Ring.name before (Ring.owner before key)
                    <> Ring.name after (Ring.owner after key))
                  (keys nkeys))
           in
           (* expectation is nkeys/(n+1); allow a generous 3x *)
           moved <= 3 * nkeys / (n + 1)));
  ]

(* ---- router over in-process shards ---- *)

let store_with_models dir =
  let store = get (Model_store.open_dir (Filename.concat dir "store")) in
  get (Model_store.save store ~name:"default" (Lazy.force Test_serve.tuner_a));
  get (Model_store.save store ~name:"next" (Lazy.force Test_serve.tuner_b));
  store

let start_shard dir i store =
  let address = Protocol.Unix_path (Filename.concat dir (Printf.sprintf "s%d.sock" i)) in
  get
    (Server.start ~address ~workers:1 ~queue_capacity:16 ~conn_timeout_s:10.
       (Server.Store (store, "default")))

let start_router ?(connect_retry_s = 2.) dir shards =
  get
    (Router.start
       ~address:(Protocol.Unix_path (Filename.concat dir "router.sock"))
       ~workers:2 ~connect_retry_s
       (List.map Server.address shards))

let with_fleet_2 dir f =
  let store = store_with_models dir in
  let s0 = start_shard dir 0 store and s1 = start_shard dir 1 store in
  let router = start_router dir [ s0; s1 ] in
  Fun.protect
    ~finally:(fun () ->
      Router.stop router;
      Router.wait router;
      List.iter
        (fun s ->
          Server.stop s;
          Server.wait s)
        [ s0; s1 ])
    (fun () -> f router [ s0; s1 ])

let raw_ask address line =
  let path = match address with Protocol.Unix_path p -> p | _ -> assert false in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
  output_string oc (line ^ "\n");
  flush oc;
  let reply = input_line ic in
  close_out_noerr oc;
  reply

let test_router_matches_direct () =
  let tuner = Lazy.force Test_serve.tuner_a in
  let inst = Benchmarks.instance_by_name benchmark in
  let direct =
    Sorl.Autotuner.rank tuner inst
      (Tuning.predefined_set ~dims:(Kernel.dims (Instance.kernel inst)))
  in
  Test_serve.with_temp_dir @@ fun dir ->
  with_fleet_2 dir @@ fun router shards ->
  let raddr = Router.address router in
  (* typed replies through the router equal the in-process ranking *)
  get
    (Client.with_connection raddr (fun c ->
         let r = get (Client.rank c ~benchmark ~top:3) in
         checkb "routed rank = direct rank" true
           (r = Array.to_list (Array.sub direct 0 3));
         let t = get (Client.tune c ~benchmark) in
         checkb "routed tune = direct best" true (Tuning.equal t direct.(0));
         (* a typed shard error passes through untouched *)
         (match Client.tune c ~benchmark:"no-such-benchmark" with
         | Error m -> checkb "no-benchmark through router" true
             (Test_serve.contains ~sub:"no-benchmark" m)
         | Ok _ -> Alcotest.fail "expected no-benchmark error");
         Ok ()));
  (* raw reply bytes through the router are identical to a direct
     shard connection's — the re-encode is canonical *)
  List.iter
    (fun q ->
      let direct_reply = raw_ask (Server.address (List.hd shards)) q in
      checks ("router bytes = shard bytes for " ^ q) direct_reply (raw_ask raddr q))
    [
      "sorl1 rank " ^ benchmark ^ " 3";
      "sorl1 tune " ^ benchmark;
      "sorl1 rank gradient-256x256x256 5";
    ];
  (* info fans out with per-shard prefixes *)
  let info = get (Client.with_connection raddr Client.info) in
  checks "router role" "router" (List.assoc "role" info);
  checks "shard count" "2" (List.assoc "shards" info);
  checks "s0 up" "true" (List.assoc "s0.up" info);
  checks "s1 model" "default" (List.assoc "s1.model" info);
  (* stats sums homonymous counters and exposes router.* *)
  let stats = get (Client.with_connection raddr Client.stats) in
  checkb "summed requests cover the traffic" true (List.assoc "requests" stats >= 5);
  (* exactly the deliberate no-benchmark probe above *)
  checki "router.errors" 1 (List.assoc "router.errors" stats);
  let forwarded = List.assoc "router.forwarded" stats in
  checki "forwarded = the rank/tune requests" (Router.requests_routed router) forwarded;
  checkb "forwarded counted" true (forwarded >= 5)

let test_router_locality () =
  Test_serve.with_temp_dir @@ fun dir ->
  with_fleet_2 dir @@ fun router _shards ->
  let raddr = Router.address router in
  let routed stats i = List.assoc (Printf.sprintf "s%d.routed" i) stats in
  get
    (Client.with_connection raddr (fun c ->
         for _ = 1 to 6 do
           ignore (get (Client.rank c ~benchmark ~top:1))
         done;
         let stats = get (Client.stats c) in
         (* one key, one owner: all six requests landed on one shard *)
         let r0 = routed stats 0 and r1 = routed stats 1 in
         checki "all requests on the owning shard" 6 (max r0 r1);
         checki "none on the other" 0 (min r0 r1);
         Ok ()))

let test_router_failover_dead_shard () =
  let tuner = Lazy.force Test_serve.tuner_a in
  let inst = Benchmarks.instance_by_name benchmark in
  let best =
    (Sorl.Autotuner.rank tuner inst
       (Tuning.predefined_set ~dims:(Kernel.dims (Instance.kernel inst)))).(0)
  in
  Test_serve.with_temp_dir @@ fun dir ->
  let store = store_with_models dir in
  let s0 = start_shard dir 0 store and s1 = start_shard dir 1 store in
  let router = start_router ~connect_retry_s:0.1 dir [ s0; s1 ] in
  Fun.protect
    ~finally:(fun () ->
      Router.stop router;
      Router.wait router;
      List.iter
        (fun s ->
          Server.stop s;
          Server.wait s)
        [ s0; s1 ])
    (fun () ->
      (* kill one shard outright; every benchmark must still answer —
         keys owned by the dead shard fall through the ring order *)
      Server.stop s1;
      Server.wait s1;
      get
        (Client.with_connection (Router.address router) (fun c ->
             List.iter
               (fun b ->
                 match Client.tune c ~benchmark:b with
                 | Ok t when b = benchmark ->
                   checkb "failover answer is correct" true (Tuning.equal t best)
                 | Ok _ -> ()
                 | Error m -> Alcotest.failf "tune %s through router: %s" b m)
               [ benchmark; "edge-512x512"; "gradient-256x256x256"; "blur-1024x1024" ];
             let info = get (Client.info c) in
             checks "dead shard reported down" "false" (List.assoc "s1.up" info);
             Ok ())))

let test_router_rolling_reload_under_load () =
  let a = Lazy.force Test_serve.tuner_a and b = Lazy.force Test_serve.tuner_b in
  let inst = Benchmarks.instance_by_name benchmark in
  let set = Tuning.predefined_set ~dims:(Kernel.dims (Instance.kernel inst)) in
  let top = 3 in
  let top_of t = Array.to_list (Array.sub (Sorl.Autotuner.rank t inst set) 0 top) in
  let from_a = top_of a and from_b = top_of b in
  Test_serve.with_temp_dir @@ fun dir ->
  with_fleet_2 dir @@ fun router _shards ->
  let raddr = Router.address router in
  let rounds = 25 in
  let torn = Atomic.make 0 in
  let loaders =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            match Client.connect raddr with
            | Error _ -> Atomic.incr torn
            | Ok c ->
              for _ = 1 to rounds do
                match Client.rank c ~benchmark ~top with
                | Ok r when r = from_a || r = from_b -> ()
                | Ok _ | Error _ -> Atomic.incr torn
              done;
              Client.close c))
  in
  Unix.sleepf 0.05;
  (* roll the whole fleet to model B mid-load *)
  let model, _generation =
    get (Client.with_connection raddr (fun c -> Client.reload ~model:"next" c))
  in
  checks "rolled to" "next" model;
  List.iter Domain.join loaders;
  checki "no torn or failed replies across the roll" 0 (Atomic.get torn);
  (* the fleet has converged: every shard serves B, reported per shard *)
  get
    (Client.with_connection raddr (fun c ->
         for _ = 1 to 8 do
           checkb "post-roll replies from model B" true
             (get (Client.rank c ~benchmark ~top) = from_b)
         done;
         let info = get (Client.info c) in
         checks "s0 on next" "next" (List.assoc "s0.model" info);
         checks "s1 on next" "next" (List.assoc "s1.model" info);
         let stats = get (Client.stats c) in
         checkb "roll recorded" true (List.assoc "router.reloads" stats >= 1);
         checki "nothing left draining" 0 (List.assoc "router.draining" stats);
         Ok ()))

(* ---- the process supervisor ---- *)

let test_fleet_spawns_and_stops () =
  Test_serve.with_temp_dir @@ fun dir ->
  let store = store_with_models dir in
  let fleet =
    get
      (Fleet.start
         ~dir:(Filename.concat dir "shards")
         ~shards:2 ~workers:1 (Server.Store (store, "default")))
  in
  let finished = ref false in
  Fun.protect
    ~finally:(fun () -> if not !finished then Fleet.stop fleet)
    (fun () ->
      checki "two shard processes" 2 (List.length (Fleet.pids fleet));
      checkb "all alive after start" true
        (List.for_all Fun.id (Fleet.alive fleet));
      (* each shard is a live server loaded with the store model *)
      List.iter
        (fun addr ->
          let info = get (Client.with_connection addr Client.info) in
          checks "shard model" "default" (List.assoc "model" info))
        (Fleet.addresses fleet);
      (* a router over the fleet serves end to end *)
      let router =
        get
          (Router.start
             ~address:(Protocol.Unix_path (Filename.concat dir "router.sock"))
             ~workers:2 (Fleet.addresses fleet))
      in
      get
        (Client.with_connection (Router.address router) (fun c ->
             ignore (get (Client.rank c ~benchmark ~top:1));
             Ok ()));
      Router.stop router;
      Router.wait router;
      Fleet.stop fleet;
      finished := true;
      checkb "all reaped after stop" true
        (List.for_all not (Fleet.alive fleet));
      (* idempotent *)
      Fleet.stop fleet)

let suite =
  [
    Alcotest.test_case "ring: sizes, owners, order-insensitivity" `Quick test_ring_basics;
    Alcotest.test_case "ring: balance across shards" `Quick test_ring_balance;
  ]
  @ ring_stability_tests
  @ [
      Alcotest.test_case "router: replies byte-identical to a shard" `Slow
        test_router_matches_direct;
      Alcotest.test_case "router: one key, one shard (locality)" `Slow test_router_locality;
      Alcotest.test_case "router: failover past a dead shard" `Slow
        test_router_failover_dead_shard;
      Alcotest.test_case "router: rolling reload under load, zero torn" `Slow
        test_router_rolling_reload_under_load;
      Alcotest.test_case "fleet: spawn, probe, route, stop, reap" `Slow
        test_fleet_spawns_and_stops;
    ]
