(* Tests for Sorl_util.Vec and Sorl_util.Sparse. *)

open Sorl_util

let feq = Alcotest.float 1e-9
let checkb = Alcotest.check Alcotest.bool

(* ---- Vec ---- *)

let test_vec_dot () =
  Alcotest.check feq "dot" 32. (Vec.dot [| 1.; 2.; 3. |] [| 4.; 5.; 6. |]);
  Alcotest.check_raises "dim mismatch" (Invalid_argument "Vec.dot: dimension mismatch")
    (fun () -> ignore (Vec.dot [| 1. |] [| 1.; 2. |]))

let test_vec_norms () =
  Alcotest.check feq "norm2" 25. (Vec.norm2 [| 3.; 4. |]);
  Alcotest.check feq "norm" 5. (Vec.norm [| 3.; 4. |])

let test_vec_ops () =
  let x = [| 1.; 2. |] and y = [| 3.; 5. |] in
  Alcotest.(check (array (float 1e-9))) "add" [| 4.; 7. |] (Vec.add x y);
  Alcotest.(check (array (float 1e-9))) "sub" [| -2.; -3. |] (Vec.sub x y);
  Alcotest.(check (array (float 1e-9))) "scale" [| 2.; 4. |] (Vec.scale 2. x);
  let z = Array.copy y in
  Vec.axpy 2. x z;
  Alcotest.(check (array (float 1e-9))) "axpy" [| 5.; 9. |] z;
  let w = Array.copy x in
  Vec.scale_inplace 3. w;
  Alcotest.(check (array (float 1e-9))) "scale_inplace" [| 3.; 6. |] w

let test_vec_inplace () =
  let x = [| 1.; 2. |] in
  Vec.add_inplace x [| 3.; 5. |];
  Alcotest.(check (array (float 1e-9))) "add_inplace" [| 4.; 7. |] x;
  Vec.sub_inplace x [| 1.; 1. |];
  Alcotest.(check (array (float 1e-9))) "sub_inplace" [| 3.; 6. |] x;
  Alcotest.check_raises "dim mismatch" (Invalid_argument "Vec.add_inplace: dimension mismatch")
    (fun () -> Vec.add_inplace [| 1. |] [| 1.; 2. |])

let test_vec_equal () =
  checkb "equal within eps" true (Vec.equal ~eps:1e-6 [| 1. |] [| 1. +. 1e-8 |]);
  checkb "not equal" false (Vec.equal [| 1. |] [| 2. |]);
  checkb "dim mismatch" false (Vec.equal [| 1. |] [| 1.; 2. |])

(* ---- Sparse ---- *)

let test_sparse_roundtrip () =
  let d = [| 0.; 1.5; 0.; -2.; 0. |] in
  let s = Sparse.of_dense d in
  Alcotest.check Alcotest.int "nnz" 2 (Sparse.nnz s);
  Alcotest.(check (array (float 1e-9))) "roundtrip" d (Sparse.to_dense s)

let test_sparse_of_list () =
  let s = Sparse.of_list ~dim:4 [ (2, 1.); (0, 3.); (2, 2.); (1, 0.) ] in
  Alcotest.check feq "duplicates summed" 3. (Sparse.get s 2);
  Alcotest.check feq "zero dropped" 0. (Sparse.get s 1);
  Alcotest.check Alcotest.int "nnz" 2 (Sparse.nnz s);
  Alcotest.check_raises "index out of range"
    (Invalid_argument "Sparse.of_list: index out of range") (fun () ->
      ignore (Sparse.of_list ~dim:2 [ (2, 1.) ]))

let test_sparse_of_sorted () =
  let s = Sparse.of_sorted ~dim:5 [| 1; 3 |] [| 2.; -1. |] in
  let via_list = Sparse.of_list ~dim:5 [ (1, 2.); (3, -1.) ] in
  checkb "matches of_list" true (Sparse.equal ~eps:0. s via_list);
  Alcotest.check_raises "not increasing"
    (Invalid_argument "Sparse.of_sorted: indices not strictly increasing") (fun () ->
      ignore (Sparse.of_sorted ~dim:5 [| 3; 1 |] [| 1.; 1. |]));
  Alcotest.check_raises "explicit zero" (Invalid_argument "Sparse.of_sorted: explicit zero entry")
    (fun () -> ignore (Sparse.of_sorted ~dim:5 [| 1 |] [| 0. |]));
  Alcotest.check_raises "out of range" (Invalid_argument "Sparse.of_sorted: index out of range")
    (fun () -> ignore (Sparse.of_sorted ~dim:5 [| 7 |] [| 1. |]));
  Alcotest.check_raises "length mismatch" (Invalid_argument "Sparse.of_sorted: length mismatch")
    (fun () -> ignore (Sparse.of_sorted ~dim:5 [| 1; 2 |] [| 1. |]))

let test_sparse_get_binary_search () =
  let s = Sparse.of_list ~dim:100 [ (3, 1.); (50, 2.); (99, 3.) ] in
  Alcotest.check feq "first" 1. (Sparse.get s 3);
  Alcotest.check feq "middle" 2. (Sparse.get s 50);
  Alcotest.check feq "last" 3. (Sparse.get s 99);
  Alcotest.check feq "absent" 0. (Sparse.get s 4)

let test_sparse_dot () =
  let a = Sparse.of_list ~dim:5 [ (0, 1.); (2, 2.); (4, 3.) ] in
  let b = Sparse.of_list ~dim:5 [ (2, 5.); (3, 7.) ] in
  Alcotest.check feq "sparse-sparse" 10. (Sparse.dot a b);
  Alcotest.check feq "sparse-dense" 10. (Sparse.dot_dense a [| 0.; 0.; 5.; 0.; 0. |])

let test_sparse_axpy_dense () =
  let a = Sparse.of_list ~dim:3 [ (1, 2.) ] in
  let d = [| 1.; 1.; 1. |] in
  Sparse.axpy_dense 3. a d;
  Alcotest.(check (array (float 1e-9))) "axpy_dense" [| 1.; 7.; 1. |] d

let test_sparse_sub_scale () =
  let a = Sparse.of_list ~dim:3 [ (0, 1.); (1, 2.) ] in
  let b = Sparse.of_list ~dim:3 [ (1, 2.); (2, 4.) ] in
  let d = Sparse.sub a b in
  Alcotest.(check (array (float 1e-9))) "sub" [| 1.; 0.; -4. |] (Sparse.to_dense d);
  (* exact cancellation must not be stored *)
  Alcotest.check Alcotest.int "cancelled entry dropped" 2 (Sparse.nnz d);
  let s = Sparse.scale 0. a in
  Alcotest.check Alcotest.int "scale by zero empties" 0 (Sparse.nnz s)

let test_sparse_concat () =
  let a = Sparse.of_list ~dim:2 [ (1, 1.) ] in
  let b = Sparse.of_list ~dim:3 [ (0, 2.) ] in
  let c = Sparse.concat [ a; b ] in
  Alcotest.check Alcotest.int "dim" 5 (Sparse.dim c);
  Alcotest.(check (array (float 1e-9))) "layout" [| 0.; 1.; 2.; 0.; 0. |] (Sparse.to_dense c)

let test_sparse_map_values () =
  let a = Sparse.of_list ~dim:3 [ (0, 1.); (1, -1.) ] in
  let b = Sparse.map_values (fun v -> if v < 0. then 0. else v *. 2.) a in
  Alcotest.check Alcotest.int "produced zero dropped" 1 (Sparse.nnz b);
  Alcotest.check feq "mapped" 2. (Sparse.get b 0)

let gen_dense = QCheck2.Gen.(array_size (int_range 1 30) (float_range (-10.) 10.))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name:"sparse dense roundtrip" gen_dense (fun d ->
           Sparse.to_dense (Sparse.of_dense d) = d));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name:"sparse dot agrees with dense dot"
         QCheck2.Gen.(pair gen_dense gen_dense)
         (fun (a, b) ->
           let n = min (Array.length a) (Array.length b) in
           let a = Array.sub a 0 n and b = Array.sub b 0 n in
           let sd = Sparse.dot (Sparse.of_dense a) (Sparse.of_dense b) in
           Float.abs (sd -. Vec.dot a b) < 1e-6));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name:"sub then to_dense = dense sub"
         QCheck2.Gen.(pair gen_dense gen_dense)
         (fun (a, b) ->
           let n = min (Array.length a) (Array.length b) in
           let a = Array.sub a 0 n and b = Array.sub b 0 n in
           Sparse.to_dense (Sparse.sub (Sparse.of_dense a) (Sparse.of_dense b))
           = Vec.sub a b));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name:"norm2 consistency" gen_dense (fun d ->
           Float.abs (Sparse.norm2 (Sparse.of_dense d) -. Vec.norm2 d) < 1e-6));
  ]

let suite =
  [
    Alcotest.test_case "vec dot" `Quick test_vec_dot;
    Alcotest.test_case "vec norms" `Quick test_vec_norms;
    Alcotest.test_case "vec ops" `Quick test_vec_ops;
    Alcotest.test_case "vec equal" `Quick test_vec_equal;
    Alcotest.test_case "vec inplace ops" `Quick test_vec_inplace;
    Alcotest.test_case "sparse roundtrip" `Quick test_sparse_roundtrip;
    Alcotest.test_case "sparse of_list" `Quick test_sparse_of_list;
    Alcotest.test_case "sparse of_sorted" `Quick test_sparse_of_sorted;
    Alcotest.test_case "sparse get" `Quick test_sparse_get_binary_search;
    Alcotest.test_case "sparse dot" `Quick test_sparse_dot;
    Alcotest.test_case "sparse axpy_dense" `Quick test_sparse_axpy_dense;
    Alcotest.test_case "sparse sub/scale" `Quick test_sparse_sub_scale;
    Alcotest.test_case "sparse concat" `Quick test_sparse_concat;
    Alcotest.test_case "sparse map_values" `Quick test_sparse_map_values;
  ]
  @ qcheck_tests
