(* Fleet shards re-execute the host binary; dispatch before the test
   harness (see Fleet.maybe_shard_main). *)
let () = Sorl_serve.Fleet.maybe_shard_main ()

let () =
  Alcotest.run "sorl"
    [
      ("rng", Test_rng.suite);
      ("pool", Test_pool.suite);
      ("stats", Test_stats.suite);
      ("rank-correlation", Test_rank_correlation.suite);
      ("vec-sparse", Test_vec_sparse.suite);
      ("table-plot", Test_table_plot.suite);
      ("telemetry", Test_telemetry.suite);
      ("grid", Test_grid.suite);
      ("pattern", Test_pattern.suite);
      ("kernel-instance", Test_kernel_instance.suite);
      ("tuning", Test_tuning.suite);
      ("features", Test_features.suite);
      ("features-fast", Test_features_fast.suite);
      ("benchmarks-shapes", Test_benchmarks_shapes.suite);
      ("dsl", Test_dsl.suite);
      ("codegen", Test_codegen.suite);
      ("machine", Test_machine.suite);
      ("svmrank", Test_svmrank.suite);
      ("search", Test_search.suite);
      ("core", Test_core.suite);
      ("topk", Test_topk.suite);
      ("serve", Test_serve.suite);
      ("neighbor", Test_neighbor.suite);
      ("fleet", Test_fleet.suite);
      ("baselines", Test_baselines.suite);
      ("temporal", Test_temporal.suite);
      ("eval-extras", Test_eval_extras.suite);
      ("rff-validate", Test_rff_validate.suite);
      ("extensions", Test_extensions.suite);
      ("learn", Test_learn.suite);
    ]
